//! The **update type classifier** of inter-update parallelism (paper §4.2).
//!
//! The classifier decides whether a graph update is *safe* — provably unable
//! to create or remove matches — via the paper's three-stage filter:
//!
//! 1. **Label filtering** — the update edge's `(L(v₁), L(v₂), L(e))` triple
//!    matches no query edge. Such an edge can never appear in a match
//!    (non-induced semantics) and never flips a label-gated ADS state, so it
//!    is safe *independently of graph state*: label-safe updates are the
//!    ones the batch executor classifies in parallel and applies to `G` in
//!    bulk with no ADS work.
//! 2. **Degree filtering** — for every compatible oriented query edge
//!    `(u₁, u₂)`, the endpoint degrees fail `d(v₁) ≥ d(u₁) ∧ d(v₂) ≥ d(u₂)`
//!    (post-insertion degrees for inserts, pre-deletion degrees for
//!    deletes). No match can use the edge, so `Find_Matches` is skipped —
//!    but the ADS may still need maintenance, which the executor performs
//!    sequentially (cheap: paper Table 3 shows ADS updates are ≤ a few
//!    percent of runtime).
//! 3. **Candidate (ADS) filtering** — evaluated by the batch executor after
//!    ADS maintenance: the update neither changed any ADS state nor
//!    connects two ADS candidates of a compatible query edge.
//!
//! Stage 2/3 verdicts depend on graph state and are therefore evaluated in
//! batch order; stage 1 is a pure function of `Q` and the edge labels, which
//! is what makes parallel classification sound (see DESIGN.md §3.2).

use crate::algorithm::CsmAlgorithm;
use csm_graph::{ELabel, EdgeUpdate, GraphShard, QVertexId, QueryGraph, VLabel, VertexId};

/// Which filtering stage classified an update as safe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SafeStage {
    /// Stage 1: label triple matches no query edge.
    Label,
    /// Stage 2: endpoint degrees cannot support any compatible query edge.
    Degree,
    /// Stage 3: ADS unchanged and no candidate seed pair.
    Ads,
}

/// Classifier verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Classified {
    /// The update cannot affect `ΔM`; `Find_Matches` may be skipped.
    Safe(SafeStage),
    /// The update may produce matches — full sequential processing.
    Unsafe,
}

impl Classified {
    /// Is this a safe verdict (any stage)?
    pub fn is_safe(&self) -> bool {
        matches!(self, Classified::Safe(_))
    }

    /// Short human-readable name of the verdict.
    pub fn name(&self) -> &'static str {
        match self {
            Classified::Safe(SafeStage::Label) => "safe:label",
            Classified::Safe(SafeStage::Degree) => "safe:degree",
            Classified::Safe(SafeStage::Ads) => "safe:ads",
            Classified::Unsafe => "unsafe",
        }
    }
}

/// Running totals for the classifier — the data behind paper Table 4
/// (unsafe-update percentage) and Fig. 12 (per-stage pruning effectiveness).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassifierStats {
    /// Edge updates examined.
    pub total: u64,
    /// Classified safe at stage 1 (label).
    pub safe_label: u64,
    /// Classified safe at stage 2 (degree).
    pub safe_degree: u64,
    /// Classified safe at stage 3 (ADS/candidate).
    pub safe_ads: u64,
    /// Classified unsafe (full processing).
    pub unsafe_count: u64,
    /// Structural no-ops (duplicate insert / phantom delete): never reach
    /// the three-stage filter but still count toward `total`, so the
    /// consistency invariant ([`ClassifierStats::is_consistent`]) holds.
    pub noops: u64,
}

impl ClassifierStats {
    /// Record one verdict.
    pub fn record(&mut self, c: Classified) {
        self.total += 1;
        match c {
            Classified::Safe(SafeStage::Label) => self.safe_label += 1,
            Classified::Safe(SafeStage::Degree) => self.safe_degree += 1,
            Classified::Safe(SafeStage::Ads) => self.safe_ads += 1,
            Classified::Unsafe => self.unsafe_count += 1,
        }
    }

    /// Record a structural no-op (examined, but no verdict applies).
    pub fn record_noop(&mut self) {
        self.total += 1;
        self.noops += 1;
    }

    /// Total safe updates.
    pub fn safe_total(&self) -> u64 {
        self.safe_label + self.safe_degree + self.safe_ads
    }

    /// Consistency invariant: every examined update got exactly one
    /// verdict, i.e. stage-wise safe counts + unsafe + no-ops == `total`.
    pub fn is_consistent(&self) -> bool {
        self.safe_label + self.safe_degree + self.safe_ads + self.unsafe_count + self.noops
            == self.total
    }

    /// One-line verdict mix for end-of-run logs, e.g.
    /// `classified=100 label=97 degree=1 ads=1 unsafe=1 noop=0 (1.0% unsafe)`.
    pub fn verdict_mix(&self) -> String {
        format!(
            "classified={} label={} degree={} ads={} unsafe={} noop={} ({:.1}% unsafe)",
            self.total,
            self.safe_label,
            self.safe_degree,
            self.safe_ads,
            self.unsafe_count,
            self.noops,
            self.unsafe_pct()
        )
    }

    /// Percentage of unsafe updates (paper Table 4 metric).
    pub fn unsafe_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.unsafe_count as f64 / self.total as f64
        }
    }

    /// Fraction of updates surviving stage 1+2 (i.e. reaching the ADS
    /// filter) — the complement of Fig. 12's "label+degree" pruning rate.
    pub fn reaching_ads_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * (self.safe_ads + self.unsafe_count) as f64 / self.total as f64
        }
    }

    /// Of the updates that reached stage 3, the fraction the ADS filter
    /// pruned (Fig. 12's second bar).
    pub fn ads_prune_pct(&self) -> f64 {
        let reached = self.safe_ads + self.unsafe_count;
        if reached == 0 {
            0.0
        } else {
            100.0 * self.safe_ads as f64 / reached as f64
        }
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, o: &ClassifierStats) {
        self.total += o.total;
        self.safe_label += o.safe_label;
        self.safe_degree += o.safe_degree;
        self.safe_ads += o.safe_ads;
        self.unsafe_count += o.unsafe_count;
        self.noops += o.noops;
    }
}

/// **Stage 1** — label filtering. Pure in `(Q, edge labels)`: safe ⟹ the
/// edge is invisible to both matching and the ADS, regardless of any other
/// concurrent update. Requires both endpoints alive (unknown endpoints are
/// conservatively not label-safe and fall through to sequential handling).
pub fn label_safe<G: GraphShard>(
    g: &G,
    q: &QueryGraph,
    e: &EdgeUpdate,
    ignore_elabels: bool,
) -> bool {
    if !g.is_alive(e.src) || !g.is_alive(e.dst) {
        return false;
    }
    !q.matches_any_edge(g.label(e.src), g.label(e.dst), e.label, ignore_elabels)
}

/// **Stage 2** — degree filtering, evaluated against the *current* graph
/// state (must be called in batch order). For inserts, the edge has not yet
/// been applied, so prospective degrees are `d(v)+1`; for deletes the edge
/// is still present, so current degrees are the degrees any existing
/// (negative) match would see.
pub fn degree_safe<G: GraphShard>(
    g: &G,
    q: &QueryGraph,
    e: &EdgeUpdate,
    is_insert: bool,
    ignore_elabels: bool,
) -> bool {
    let extra = usize::from(is_insert);
    let d_src = g.degree(e.src) + extra;
    let d_dst = g.degree(e.dst) + extra;
    let (la, lb) = (g.label(e.src), g.label(e.dst));
    for (u1, u2) in q.seed_edges(la, lb, e.label, ignore_elabels) {
        if d_src >= q.degree(u1) && d_dst >= q.degree(u2) {
            return false; // some compatible query edge is degree-feasible
        }
    }
    true
}

/// One-hop structural feasibility of mapping `u → v`: every query edge
/// incident to `u` needs at least one `(neighbor label, edge label)`-
/// compatible data edge at `v`. This is a *necessary* condition for `v` to
/// appear in any match at position `u` and is answered straight off the
/// partition index in `O(deg_Q(u) · log)` — no adjacency scan.
pub fn endpoint_feasible<G: GraphShard>(
    g: &G,
    q: &QueryGraph,
    u: QVertexId,
    v: VertexId,
    ignore_elabels: bool,
) -> bool {
    q.neighbors(u).iter().all(|&(nb, el)| {
        g.count_neighbors_with(v, q.label(nb), (!ignore_elabels).then_some(el)) > 0
    })
}

/// Per-update memo for the endpoint-feasibility probes of
/// [`candidates_safe`]. Within one update phase the data graph is fixed and
/// every session probes the *same two vertices* (the update edge's
/// endpoints), so the answer to "does `v` have a `(label, elabel)`
/// neighbor?" is identical across sessions — the serving layer's shared
/// index reuses it instead of re-walking the partition index per session.
///
/// The memo is keyed on `(endpoint is dst, neighbor label, edge label)`;
/// the `Option<ELabel>` already folds in each algorithm's
/// ignore-edge-labels mode, so one memo is sound across algorithms. It
/// must be [`ProbeMemo::reset`] whenever the graph mutates or the probed
/// edge changes.
#[derive(Debug, Default)]
pub struct ProbeMemo {
    entries: Vec<(bool, VLabel, Option<ELabel>, bool)>,
}

impl ProbeMemo {
    /// Fresh, empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Invalidate every cached probe (graph changed or new update edge).
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// Memoized `count_neighbors_with(v, label, elabel) > 0`. Queries are
    /// tiny, so a linear scan over the few cached probes beats hashing.
    fn probe<G: GraphShard>(
        &mut self,
        g: &G,
        v: VertexId,
        is_dst: bool,
        label: VLabel,
        el: Option<ELabel>,
    ) -> bool {
        for &(d, l, e, r) in &self.entries {
            if d == is_dst && l == label && e == el {
                return r;
            }
        }
        let r = g.count_neighbors_with(v, label, el) > 0;
        self.entries.push((is_dst, label, el, r));
        r
    }
}

/// [`endpoint_feasible`] with the probes served from a cross-session
/// [`ProbeMemo`]. `is_dst` tags which update endpoint `v` is, keeping the
/// memo sound when both endpoints carry the same vertex label.
pub fn endpoint_feasible_memo<G: GraphShard>(
    g: &G,
    q: &QueryGraph,
    u: QVertexId,
    v: VertexId,
    is_dst: bool,
    ignore_elabels: bool,
    memo: &mut ProbeMemo,
) -> bool {
    q.neighbors(u)
        .iter()
        .all(|&(nb, el)| memo.probe(g, v, is_dst, q.label(nb), (!ignore_elabels).then_some(el)))
}

/// **Stage 3** — candidate filtering against the current ADS state: no
/// compatible oriented query edge has both endpoints structurally feasible
/// ([`endpoint_feasible`], a partition-index lookup) *and* in the
/// algorithm's candidate sets. For inserts call *after* `update_ads`
/// (post-state, edge applied); for deletes call *before* (negative matches
/// live in the pre-deletion state) — in both cases the evaluated graph
/// contains the edge, which is what makes the structural check sound.
pub fn candidates_safe<G: GraphShard>(
    g: &G,
    q: &QueryGraph,
    algo: &dyn CsmAlgorithm<G>,
    e: &EdgeUpdate,
) -> bool {
    let ignore = algo.ignore_edge_labels();
    let (la, lb) = (g.label(e.src), g.label(e.dst));
    for (u1, u2) in q.seed_edges(la, lb, e.label, ignore) {
        if endpoint_feasible(g, q, u1, e.src, ignore)
            && endpoint_feasible(g, q, u2, e.dst, ignore)
            && algo.is_candidate(g, q, u1, e.src)
            && algo.is_candidate(g, q, u2, e.dst)
        {
            return false;
        }
    }
    true
}

/// [`candidates_safe`] with the structural endpoint probes served from a
/// cross-session [`ProbeMemo`]. Bit-identical verdicts to the unmemoized
/// form (the memo only caches pure graph probes); the candidate checks
/// still consult this algorithm's own ADS.
pub fn candidates_safe_memo<G: GraphShard>(
    g: &G,
    q: &QueryGraph,
    algo: &dyn CsmAlgorithm<G>,
    e: &EdgeUpdate,
    memo: &mut ProbeMemo,
) -> bool {
    let ignore = algo.ignore_edge_labels();
    let (la, lb) = (g.label(e.src), g.label(e.dst));
    for (u1, u2) in q.seed_edges(la, lb, e.label, ignore) {
        if endpoint_feasible_memo(g, q, u1, e.src, false, ignore, memo)
            && endpoint_feasible_memo(g, q, u2, e.dst, true, ignore, memo)
            && algo.is_candidate(g, q, u1, e.src)
            && algo.is_candidate(g, q, u2, e.dst)
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::AdsChange;
    use csm_graph::{DataGraph, ELabel, QVertexId, VLabel, VertexId};

    struct Plain;
    impl CsmAlgorithm for Plain {
        fn name(&self) -> &'static str {
            "plain"
        }
        fn rebuild(&mut self, _: &DataGraph, _: &QueryGraph) {}
        fn update_ads(
            &mut self,
            _: &DataGraph,
            _: &QueryGraph,
            _: EdgeUpdate,
            _: bool,
        ) -> AdsChange {
            AdsChange::Unchanged
        }
        fn is_candidate(&self, _: &DataGraph, _: &QueryGraph, _: QVertexId, _: VertexId) -> bool {
            true
        }
    }

    /// Query: u0(L0) - u1(L1) - u2(L1), edge labels 0.
    fn setup() -> (DataGraph, QueryGraph) {
        let mut q = QueryGraph::new();
        let a = q.add_vertex(VLabel(0));
        let b = q.add_vertex(VLabel(1));
        let c = q.add_vertex(VLabel(1));
        q.add_edge(a, b, ELabel(0)).unwrap();
        q.add_edge(b, c, ELabel(0)).unwrap();
        let mut g = DataGraph::new();
        g.add_vertex(VLabel(0)); // v0
        g.add_vertex(VLabel(1)); // v1
        g.add_vertex(VLabel(1)); // v2
        g.add_vertex(VLabel(2)); // v3
        (g, q)
    }

    #[test]
    fn label_filter_catches_incompatible_triples() {
        let (g, q) = setup();
        // (L2, L0): no query edge has these labels.
        let e = EdgeUpdate::new(VertexId(3), VertexId(0), ELabel(0));
        assert!(label_safe(&g, &q, &e, false));
        // (L0, L1) with wrong edge label: safe unless labels ignored.
        let e = EdgeUpdate::new(VertexId(0), VertexId(1), ELabel(9));
        assert!(label_safe(&g, &q, &e, false));
        assert!(!label_safe(&g, &q, &e, true));
        // (L0, L1) with right edge label: not label-safe.
        let e = EdgeUpdate::new(VertexId(0), VertexId(1), ELabel(0));
        assert!(!label_safe(&g, &q, &e, false));
    }

    #[test]
    fn unknown_endpoint_is_never_label_safe() {
        let (g, q) = setup();
        let e = EdgeUpdate::new(VertexId(0), VertexId(99), ELabel(0));
        assert!(!label_safe(&g, &q, &e, false));
    }

    #[test]
    fn degree_filter_uses_prospective_degrees_for_insert() {
        let (mut g, q) = setup();
        // Inserting v0-v1: post-degrees are (1,1). u0 needs deg ≥ 1 and u1
        // needs deg ≥ 2 → infeasible → degree-safe.
        let e = EdgeUpdate::new(VertexId(0), VertexId(1), ELabel(0));
        assert!(degree_safe(&g, &q, &e, true, false));
        // Give v1 another edge so its post-degree reaches 2 → unsafe.
        g.insert_edge(VertexId(1), VertexId(2), ELabel(0)).unwrap();
        assert!(!degree_safe(&g, &q, &e, true, false));
    }

    #[test]
    fn degree_filter_for_delete_uses_current_degrees() {
        let (mut g, q) = setup();
        g.insert_edge(VertexId(0), VertexId(1), ELabel(0)).unwrap();
        // Deleting v0-v1: current degrees (1, 1); u1 needs 2 → safe.
        let e = EdgeUpdate::new(VertexId(0), VertexId(1), ELabel(0));
        assert!(degree_safe(&g, &q, &e, false, false));
        g.insert_edge(VertexId(1), VertexId(2), ELabel(0)).unwrap();
        // Now v1 has degree 2 → a negative match could exist → unsafe.
        assert!(!degree_safe(&g, &q, &e, false, false));
    }

    #[test]
    fn candidate_filter_consults_algorithm() {
        let (mut g, q) = setup();
        g.insert_edge(VertexId(0), VertexId(1), ELabel(0)).unwrap();
        // Make both endpoints one-hop feasible (v1 needs an L1 neighbor for
        // u1's second query edge) so the verdict hinges on the algorithm.
        g.insert_edge(VertexId(1), VertexId(2), ELabel(0)).unwrap();
        let e = EdgeUpdate::new(VertexId(0), VertexId(1), ELabel(0));
        // Plain says every vertex is a candidate → seed pair exists → unsafe.
        assert!(!candidates_safe(&g, &q, &Plain, &e));

        struct Never;
        impl CsmAlgorithm for Never {
            fn name(&self) -> &'static str {
                "never"
            }
            fn rebuild(&mut self, _: &DataGraph, _: &QueryGraph) {}
            fn update_ads(
                &mut self,
                _: &DataGraph,
                _: &QueryGraph,
                _: EdgeUpdate,
                _: bool,
            ) -> AdsChange {
                AdsChange::Unchanged
            }
            fn is_candidate(
                &self,
                _: &DataGraph,
                _: &QueryGraph,
                _: QVertexId,
                _: VertexId,
            ) -> bool {
                false
            }
        }
        assert!(candidates_safe(&g, &q, &Never, &e));
    }

    #[test]
    fn structural_prefilter_catches_infeasible_endpoints() {
        let (mut g, q) = setup();
        // Only v0-v1 exists: u1 ↦ v1 needs an L1 neighbor (for u2) that v1
        // lacks, so even the all-accepting ADS classifies the edge safe.
        g.insert_edge(VertexId(0), VertexId(1), ELabel(0)).unwrap();
        let e = EdgeUpdate::new(VertexId(0), VertexId(1), ELabel(0));
        assert!(!endpoint_feasible(&g, &q, QVertexId(1), VertexId(1), false));
        assert!(endpoint_feasible(&g, &q, QVertexId(0), VertexId(0), false));
        assert!(candidates_safe(&g, &q, &Plain, &e));
        // Adding the missing L1-L1 edge flips the verdict to unsafe.
        g.insert_edge(VertexId(1), VertexId(2), ELabel(0)).unwrap();
        assert!(!candidates_safe(&g, &q, &Plain, &e));
    }

    #[test]
    fn memoized_candidates_safe_matches_unmemoized() {
        let (mut g, q) = setup();
        g.insert_edge(VertexId(0), VertexId(1), ELabel(0)).unwrap();
        let e1 = EdgeUpdate::new(VertexId(0), VertexId(1), ELabel(0));
        let mut memo = ProbeMemo::new();
        assert_eq!(
            candidates_safe(&g, &q, &Plain, &e1),
            candidates_safe_memo(&g, &q, &Plain, &e1, &mut memo)
        );
        // Re-answering from the memo (second "session") stays identical.
        assert_eq!(
            candidates_safe(&g, &q, &Plain, &e1),
            candidates_safe_memo(&g, &q, &Plain, &e1, &mut memo)
        );
        // A graph mutation requires a reset; after it the memoized verdict
        // tracks the new state.
        g.insert_edge(VertexId(1), VertexId(2), ELabel(0)).unwrap();
        memo.reset();
        assert_eq!(
            candidates_safe(&g, &q, &Plain, &e1),
            candidates_safe_memo(&g, &q, &Plain, &e1, &mut memo)
        );
    }

    #[test]
    fn stats_percentages() {
        let mut s = ClassifierStats::default();
        for _ in 0..97 {
            s.record(Classified::Safe(SafeStage::Label));
        }
        s.record(Classified::Safe(SafeStage::Degree));
        s.record(Classified::Safe(SafeStage::Ads));
        s.record(Classified::Unsafe);
        assert_eq!(s.total, 100);
        assert_eq!(s.safe_total(), 99);
        assert!((s.unsafe_pct() - 1.0).abs() < 1e-9);
        assert!((s.reaching_ads_pct() - 2.0).abs() < 1e-9);
        assert!((s.ads_prune_pct() - 50.0).abs() < 1e-9);
        let mut t = ClassifierStats::default();
        t.merge(&s);
        assert_eq!(t, s);
    }

    #[test]
    fn consistency_invariant_tracks_noops() {
        let mut s = ClassifierStats::default();
        assert!(s.is_consistent());
        s.record(Classified::Safe(SafeStage::Label));
        s.record(Classified::Unsafe);
        s.record_noop();
        assert_eq!(s.total, 3);
        assert_eq!(s.noops, 1);
        assert!(s.is_consistent());
        let mix = s.verdict_mix();
        assert!(
            mix.contains("classified=3") && mix.contains("noop=1"),
            "{mix}"
        );
        // A hand-corrupted block is detected.
        s.total += 1;
        assert!(!s.is_consistent());
    }
}
