//! Automorphism handling: counting *distinct subgraphs* instead of
//! mappings.
//!
//! CSM engines (this reproduction included, matching the literature) count
//! *mappings*: a triangle query over an unlabeled triangle reports 6
//! results, one per automorphic image. Applications usually want each
//! subgraph once. Because every injective mapping's automorphic orbit has
//! size exactly `|Aut(Q)|` (the stabilizer of an injective mapping is
//! trivial), two exact dedup strategies exist:
//!
//! * divide mapping counts by [`AutomorphismGroup::order`] — `O(1)`;
//! * keep only the *canonical* representative of each orbit during
//!   enumeration via [`CanonicalSink`] — needed when materializing.

use crate::embedding::{Embedding, MatchSink};
use csm_graph::{QVertexId, QueryGraph};

/// The automorphism group of a query graph, as explicit permutations.
#[derive(Clone, Debug)]
pub struct AutomorphismGroup {
    /// Each permutation maps query-vertex index → query-vertex index.
    /// The identity is always present (index 0 by construction).
    perms: Vec<Vec<u8>>,
    n: usize,
}

impl AutomorphismGroup {
    /// Compute the group by brute-force backtracking (queries are tiny;
    /// label and degree pruning keep this immediate for CSM-scale patterns).
    pub fn of(q: &QueryGraph) -> AutomorphismGroup {
        let n = q.num_vertices();
        let mut perms = Vec::new();
        let mut mapping = vec![u8::MAX; n];
        let mut used = vec![false; n];
        collect(q, 0, &mut mapping, &mut used, &mut perms);
        // Put the identity first for the fast path.
        if let Some(pos) = perms
            .iter()
            .position(|p| p.iter().enumerate().all(|(i, &v)| v as usize == i))
        {
            perms.swap(0, pos);
        }
        AutomorphismGroup { perms, n }
    }

    /// `|Aut(Q)|`.
    pub fn order(&self) -> usize {
        self.perms.len()
    }

    /// Number of query vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Is this complete embedding the canonical (lexicographically minimal)
    /// representative of its automorphic orbit?
    ///
    /// The image of `M` under automorphism `σ` is `M∘σ`; `M` is canonical
    /// iff the vector `(M(u₀), …, M(u_{n−1}))` is ≤ every
    /// `(M(σ(u₀)), …, M(σ(u_{n−1})))`.
    pub fn is_canonical(&self, emb: &Embedding) -> bool {
        for perm in &self.perms[1..] {
            for (i, &pi) in perm.iter().enumerate().take(self.n) {
                let a = emb.get_unchecked(QVertexId::from(i));
                let b = emb.get_unchecked(QVertexId::from(pi as usize));
                if b < a {
                    return false; // the image is smaller — not canonical
                }
                if a < b {
                    break; // this image is larger; next permutation
                }
            }
        }
        true
    }

    /// Exact distinct-subgraph count from a mapping count.
    pub fn distinct(&self, mappings: u64) -> u64 {
        debug_assert_eq!(mappings % self.order() as u64, 0, "orbits are full-size");
        mappings / self.order() as u64
    }
}

fn collect(
    q: &QueryGraph,
    depth: usize,
    mapping: &mut Vec<u8>,
    used: &mut Vec<bool>,
    out: &mut Vec<Vec<u8>>,
) {
    let n = q.num_vertices();
    if depth == n {
        out.push(mapping.clone());
        return;
    }
    let u = QVertexId::from(depth);
    for cand in 0..n {
        if used[cand] {
            continue;
        }
        let c = QVertexId::from(cand);
        if q.label(c) != q.label(u) || q.degree(c) != q.degree(u) {
            continue;
        }
        let ok = (0..depth).all(|p| {
            let pu = QVertexId::from(p);
            match q.edge_label(u, pu) {
                Some(l) => q.edge_label(c, QVertexId::from(mapping[p] as usize)) == Some(l),
                None => !q.has_edge(c, QVertexId::from(mapping[p] as usize)),
            }
        });
        if !ok {
            continue;
        }
        mapping[depth] = cand as u8;
        used[cand] = true;
        collect(q, depth + 1, mapping, used, out);
        used[cand] = false;
    }
}

/// A sink adapter that forwards only orbit-canonical embeddings.
pub struct CanonicalSink<'a, S: MatchSink> {
    /// The wrapped sink.
    pub inner: &'a mut S,
    /// The query's automorphism group.
    pub group: &'a AutomorphismGroup,
}

impl<S: MatchSink> MatchSink for CanonicalSink<'_, S> {
    #[inline]
    fn report(&mut self, emb: &Embedding, n: usize) -> bool {
        if self.group.is_canonical(emb) {
            self.inner.report(emb, n)
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::BufferSink;
    use crate::kernel::{self, NoFilter, SearchCtx, SearchStats};
    use crate::order::SeedOrder;
    use csm_graph::{DataGraph, ELabel, VLabel};

    fn triangle_query(labels: [u32; 3]) -> QueryGraph {
        let mut q = QueryGraph::new();
        let u: Vec<_> = labels.iter().map(|&l| q.add_vertex(VLabel(l))).collect();
        q.add_edge(u[0], u[1], ELabel(0)).unwrap();
        q.add_edge(u[1], u[2], ELabel(0)).unwrap();
        q.add_edge(u[0], u[2], ELabel(0)).unwrap();
        q
    }

    #[test]
    fn group_orders() {
        assert_eq!(AutomorphismGroup::of(&triangle_query([0, 0, 0])).order(), 6);
        assert_eq!(AutomorphismGroup::of(&triangle_query([0, 0, 1])).order(), 2);
        assert_eq!(AutomorphismGroup::of(&triangle_query([0, 1, 2])).order(), 1);
    }

    #[test]
    fn canonical_filter_keeps_one_per_orbit() {
        // K4 data graph, unlabeled triangle query: 4 distinct triangles,
        // 24 mappings.
        let mut g = DataGraph::new();
        let vs: Vec<_> = (0..4).map(|_| g.add_vertex(VLabel(0))).collect();
        for i in 0..4 {
            for j in i + 1..4 {
                g.insert_edge(vs[i], vs[j], ELabel(0)).unwrap();
            }
        }
        let q = triangle_query([0, 0, 0]);
        let group = AutomorphismGroup::of(&q);
        let order = SeedOrder::build(&q, &[QVertexId(0)]);
        let ctx = SearchCtx {
            g: &g,
            q: &q,
            order: &order,
            ignore_elabels: false,
            deadline: None,
            profile: None,
        };

        let mut all = BufferSink::counting();
        let mut stats = SearchStats::default();
        kernel::extend(
            &ctx,
            &NoFilter,
            &mut Embedding::empty(),
            0,
            &mut all,
            &mut stats,
        );
        assert_eq!(all.count, 24);
        assert_eq!(group.distinct(all.count), 4);

        let mut unique = BufferSink::collecting();
        let mut canon = CanonicalSink {
            inner: &mut unique,
            group: &group,
        };
        let mut stats = SearchStats::default();
        kernel::extend(
            &ctx,
            &NoFilter,
            &mut Embedding::empty(),
            0,
            &mut canon,
            &mut stats,
        );
        assert_eq!(unique.count, 4);
        // Each canonical match is sorted ascending (minimal orbit image of
        // a fully symmetric pattern).
        for m in &unique.matches {
            let s = m.as_slice();
            assert!(s.windows(2).all(|w| w[0] < w[1]), "non-canonical {m:?}");
        }
    }

    #[test]
    fn asymmetric_query_passes_everything() {
        let q = triangle_query([0, 1, 2]);
        let group = AutomorphismGroup::of(&q);
        assert_eq!(group.order(), 1);
        let mut emb = Embedding::empty();
        emb.set(QVertexId(0), csm_graph::VertexId(9));
        emb.set(QVertexId(1), csm_graph::VertexId(3));
        emb.set(QVertexId(2), csm_graph::VertexId(7));
        assert!(group.is_canonical(&emb));
    }

    #[test]
    fn group_order_matches_query_automorphisms() {
        for labels in [[0, 0, 0], [0, 0, 1], [0, 1, 2]] {
            let q = triangle_query(labels);
            assert_eq!(AutomorphismGroup::of(&q).order(), q.count_automorphisms());
        }
    }
}
