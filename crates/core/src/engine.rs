//! The per-query update engine — `ParaCosm`'s execution core, factored out
//! so it can run against a data graph it does **not** own.
//!
//! [`crate::ParaCosm`] couples one [`Engine`] with one owned [`DataGraph`]
//! and a stream loop; the `csm-service` serving layer instead multiplexes
//! many engines (one per standing query session) over a single shared
//! graph. Everything that is *per query* lives here: the query, the hosted
//! algorithm and its ADS, matching orders, configuration, deadline,
//! telemetry, and cumulative [`RunStats`]. Everything that is *per graph*
//! (applying updates, stream order, batching) stays with the caller, which
//! hands the engine a `&DataGraph` at each call.
//!
//! Call conventions mirror paper Algorithm 1 and the
//! [`crate::CsmAlgorithm`] contract:
//!
//! * **insertion** — apply the edge to `G` first, then
//!   [`Engine::ads_update`] (`is_insert = true`), then
//!   [`Engine::find_matches`] for the positive ΔM;
//! * **deletion** — [`Engine::find_matches`] first (negative matches exist
//!   only while the edge is present), then remove the edge from `G`, then
//!   [`Engine::ads_update`] (`is_insert = false`).

use crate::algorithm::{AdsCandidates, AdsChange, CsmAlgorithm};
use crate::config::ParaCosmConfig;
use crate::embedding::{BufferSink, Embedding, Match, MAX_PATTERN_VERTICES};
use crate::error::{CsmError, CsmResult};
use crate::inner::{self, InnerConfig, SeedTask};
use crate::inter::{self, Classified, ClassifierStats};
use crate::kernel::{SearchCtx, SearchStats};
use crate::metrics::LatencyHistogram;
use crate::order::MatchingOrders;
use crate::static_match::{self, StaticResult};
use crate::trace::flight::SpanId;
use crate::trace::profile::Profiler;
use crate::trace::window::{WindowConfig, WindowRing};
use crate::trace::{
    self, Counter, EventKind, Gauge, RunReport, SessionDims, StreamObserver, Tracer,
    UpdateObservation,
};
use csm_graph::{DataGraph, EdgeUpdate, GraphShard, QueryGraph, Update};
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cumulative run statistics (feeds paper Tables 3/4 and Figs. 10/12).
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Time spent maintaining the ADS (`Update_ADS`).
    pub ads_time: Duration,
    /// Time spent enumerating matches (`Find_Matches`) — wall clock of the
    /// work actually performed on this host.
    pub find_time: Duration,
    /// Parallel makespan of `Find_Matches`: equal to `find_time` for real
    /// (sequential or threaded) runs; in virtual-scheduler mode
    /// (`sim_threads`), the simulated N-worker critical path instead.
    pub find_span: Duration,
    /// Time spent applying updates to `G` (incl. parallel bulk phases).
    pub apply_time: Duration,
    /// Time spent in the batch executor's data-parallel phases (stage-1
    /// classification + bulk application of label-safe updates). On the
    /// paper's testbed this work is spread over `k` worker threads; the
    /// harness projects it accordingly on smaller hosts.
    pub bulk_time: Duration,
    /// Edge/vertex updates processed.
    pub updates: u64,
    /// Positive (appearing) matches reported.
    pub positives: u64,
    /// Negative (disappearing) matches reported.
    pub negatives: u64,
    /// Classifier verdict counters (inter-update runs).
    pub classifier: ClassifierStats,
    /// Search-tree nodes visited.
    pub nodes: u64,
    /// Per-worker busy time accumulated over inner-update runs (Fig. 10).
    pub thread_busy: Vec<Duration>,
    /// Donation events in the inner executor.
    pub tasks_split: u64,
    /// Subtree tasks executed by the inner executor.
    pub tasks_executed: u64,
    /// A deadline fired during processing.
    pub timed_out: bool,
    /// Per-update latency distribution (only when
    /// `ParaCosmConfig::track_latency` is set; batched runs record the
    /// sequentially processed residual updates).
    pub latency: LatencyHistogram,
    /// The `ParaCosmConfig::slow_k` slowest updates, latency-descending,
    /// each with its stage breakdown. Bulk-applied label-safe updates are
    /// not eligible (their per-update latency is ~zero by construction).
    pub slowest: Vec<SlowUpdate>,
}

/// One entry of the top-K slowest-updates capture
/// (`ParaCosmConfig::slow_k`): the update, its end-to-end latency, and
/// where that time went.
#[derive(Clone, Copy, Debug)]
pub struct SlowUpdate {
    /// Zero-based position in the stream.
    pub index: u64,
    /// The update itself.
    pub update: Update,
    /// End-to-end latency.
    pub latency: Duration,
    /// `Update_ADS` time within this update.
    pub ads: Duration,
    /// Graph-application time within this update.
    pub apply: Duration,
    /// `Find_Matches` time within this update.
    pub find: Duration,
    /// Search-tree nodes visited by this update.
    pub nodes: u64,
    /// Flight-recorder span of the update ([`SpanId::NONE`] when the
    /// recorder was off), so slow-update reports and `/debug/flight`
    /// snapshots cross-reference the same causal trace.
    pub span: SpanId,
}

impl SlowUpdate {
    /// Compact human/JSON-friendly description of the update, e.g.
    /// `+e 3-17 l0` (insert edge), `-v 12` (delete vertex).
    pub fn describe(&self) -> String {
        match self.update {
            Update::InsertEdge(e) => format!("+e {}-{} l{}", e.src.0, e.dst.0, e.label.0),
            Update::DeleteEdge(e) => format!("-e {}-{} l{}", e.src.0, e.dst.0, e.label.0),
            Update::InsertVertex { id, label } => format!("+v {} l{}", id.0, label.0),
            Update::DeleteVertex { id } => format!("-v {}", id.0),
        }
    }
}

impl RunStats {
    /// Projected stream time had `Find_Matches` run at its parallel
    /// makespan: `wall − find_time + find_span`. For non-simulated runs this
    /// equals `wall`.
    pub fn projected_time(&self, wall: Duration) -> Duration {
        wall.saturating_sub(self.find_time) + self.find_span
    }

    pub(crate) fn absorb_busy(&mut self, busy: &[Duration]) {
        if self.thread_busy.len() < busy.len() {
            self.thread_busy.resize(busy.len(), Duration::ZERO);
        }
        for (acc, b) in self.thread_busy.iter_mut().zip(busy) {
            *acc += *b;
        }
    }

    /// Keep the `k` slowest updates, latency-descending.
    pub(crate) fn note_slow(&mut self, k: usize, su: SlowUpdate) {
        if k == 0 {
            return;
        }
        let pos = self.slowest.partition_point(|s| s.latency >= su.latency);
        if pos >= k {
            return;
        }
        self.slowest.insert(pos, su);
        self.slowest.truncate(k);
    }
}

/// Result of one [`Engine::find_matches`] enumeration.
#[derive(Clone, Debug, Default)]
pub struct FindOutcome {
    /// Matches found (ΔM size for this update/engine pair).
    pub count: u64,
    /// Materialized matches (when collection was requested).
    pub matches: Vec<Match>,
    /// The enumeration hit the cooperative deadline.
    pub timed_out: bool,
}

/// Opaque `(ads, apply, find, nodes)` marker diffed around one update for
/// the slowest-K stage breakdown ([`Engine::stage_snapshot`] /
/// [`Engine::finish_update`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageSnapshot {
    ads: Duration,
    apply: Duration,
    find: Duration,
    nodes: u64,
}

/// The per-query update engine: hosts one algorithm over one query and
/// executes the per-update pipeline against a caller-provided data graph.
///
/// # Examples
///
/// ```
/// use paracosm_core::{Engine, ParaCosmConfig};
/// # use paracosm_core::{AdsChange, CsmAlgorithm};
/// # use csm_graph::{DataGraph, QueryGraph, VLabel, ELabel, EdgeUpdate, QVertexId, VertexId};
/// # struct Plain;
/// # impl CsmAlgorithm for Plain {
/// #     fn name(&self) -> &'static str { "plain" }
/// #     fn rebuild(&mut self, _: &DataGraph, _: &QueryGraph) {}
/// #     fn update_ads(&mut self, _: &DataGraph, _: &QueryGraph, _: EdgeUpdate, _: bool)
/// #         -> AdsChange { AdsChange::Unchanged }
/// #     fn is_candidate(&self, _: &DataGraph, _: &QueryGraph, _: QVertexId, _: VertexId)
/// #         -> bool { true }
/// # }
/// // Data: path v0-v1-v2; query: triangle.
/// let mut g = DataGraph::new();
/// let v: Vec<_> = (0..3).map(|_| g.add_vertex(VLabel(0))).collect();
/// g.insert_edge(v[0], v[1], ELabel(0)).unwrap();
/// g.insert_edge(v[1], v[2], ELabel(0)).unwrap();
/// let mut q = QueryGraph::new();
/// let u: Vec<_> = (0..3).map(|_| q.add_vertex(VLabel(0))).collect();
/// q.add_edge(u[0], u[1], ELabel(0)).unwrap();
/// q.add_edge(u[1], u[2], ELabel(0)).unwrap();
/// q.add_edge(u[0], u[2], ELabel(0)).unwrap();
///
/// let mut eng = Engine::new(&g, q, Plain, ParaCosmConfig::sequential()).unwrap();
/// // Insertion convention: apply to G first, then ADS, then enumerate.
/// let e = EdgeUpdate::new(v[0], v[2], ELabel(0));
/// g.insert_edge(e.src, e.dst, e.label).unwrap();
/// eng.ads_update(&g, e, true);
/// let out = eng.find_matches(&g, &e, false);
/// assert_eq!(out.count, 6); // one triangle × 6 automorphic mappings
/// ```
pub struct Engine<A: CsmAlgorithm<G>, G: GraphShard = DataGraph> {
    q: QueryGraph,
    algo: A,
    orders: MatchingOrders,
    cfg: ParaCosmConfig,
    deadline: Option<Instant>,
    /// Telemetry handle (inert unless `ParaCosmConfig::tracing` is set).
    tracer: Tracer,
    /// Rolling-window telemetry ring (inert — one branch per update —
    /// unless `ParaCosmConfig::window` is set or
    /// [`Engine::enable_window`] installed one).
    window: Option<Arc<WindowRing>>,
    /// Per-(order, depth) cost-attribution plane (inert — `frame()` is
    /// `None`, one branch per site — unless `ParaCosmConfig::profile`
    /// is set).
    profiler: Profiler,
    /// Cumulative statistics; reset with [`Engine::reset_stats`].
    pub stats: RunStats,
    _g: PhantomData<fn() -> G>,
}

impl<G: GraphShard, A: CsmAlgorithm<G>> Engine<A, G> {
    /// Offline stage: validate the configuration, build matching orders,
    /// and (re)build the algorithm's ADS for `g`.
    ///
    /// Errors with [`CsmError::ConfigInvalid`] when the configuration fails
    /// [`ParaCosmConfig::validate`] or the query is empty / exceeds
    /// [`MAX_PATTERN_VERTICES`].
    pub fn new(g: &G, q: QueryGraph, mut algo: A, cfg: ParaCosmConfig) -> CsmResult<Self> {
        cfg.validate()?;
        if q.num_vertices() < 1 || q.num_vertices() > MAX_PATTERN_VERTICES {
            return Err(CsmError::ConfigInvalid {
                field: "query",
                reason: format!(
                    "query must have 1..={MAX_PATTERN_VERTICES} vertices, has {}",
                    q.num_vertices()
                ),
            });
        }
        algo.rebuild(g, &q);
        let orders = MatchingOrders::build(&q);
        let tracer = Tracer::new(cfg.trace, cfg.num_threads);
        tracer.gauge(Gauge::BatchSize, cfg.batch_size as u64);
        let window = cfg.window.map(|w| Arc::new(WindowRing::new(w)));
        let profiler = Profiler::new(cfg.profile, &q, &orders);
        Ok(Engine {
            q,
            algo,
            orders,
            cfg,
            deadline: None,
            tracer,
            window,
            profiler,
            stats: RunStats::default(),
            _g: PhantomData,
        })
    }

    /// The query pattern.
    pub fn query(&self) -> &QueryGraph {
        &self.q
    }

    /// The hosted algorithm (e.g. to inspect its ADS in tests).
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// The active configuration.
    pub fn config(&self) -> &ParaCosmConfig {
        &self.cfg
    }

    /// The telemetry handle (inert when tracing is off). Snapshot or export
    /// after a run: [`Tracer::metrics`], [`Tracer::perfetto_json`],
    /// [`Tracer::prometheus_text`].
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The rolling-window telemetry ring, when one is configured
    /// ([`ParaCosmConfig::windowed`] or [`Engine::enable_window`]).
    pub fn window(&self) -> Option<&Arc<WindowRing>> {
        self.window.as_ref()
    }

    /// The query profiler handle (inert when `ParaCosmConfig::profile`
    /// is off). Snapshot with [`Profiler::snapshot`] for the per-edge
    /// EXPLAIN surfaces.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Install a rolling-window ring if none is configured yet and return
    /// a shared handle to it. Used by the serving layer's telemetry plane
    /// to windowize sessions that didn't opt in per-config; idempotent —
    /// an existing ring (and its history) is kept.
    pub fn enable_window(&mut self, cfg: WindowConfig) -> Arc<WindowRing> {
        match &self.window {
            Some(w) => Arc::clone(w),
            None => {
                let w = Arc::new(WindowRing::new(cfg));
                self.window = Some(Arc::clone(&w));
                w
            }
        }
    }

    /// Clear cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::default();
    }

    /// Set (or clear) the cooperative deadline used by subsequent calls.
    pub fn set_deadline(&mut self, d: Option<Instant>) {
        self.deadline = d;
    }

    /// The currently active cooperative deadline.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Build a machine-readable [`RunReport`] from the current statistics
    /// and registry snapshot; `outcome` embeds a stream result, `session`
    /// tags the report with serving-layer session dimensions.
    pub fn run_report(
        &self,
        outcome: Option<crate::framework::StreamOutcome>,
        session: Option<SessionDims>,
    ) -> RunReport {
        RunReport {
            algo: self.algo.name().to_string(),
            threads: self.cfg.num_threads,
            outcome,
            stats: self.stats.clone(),
            metrics: self.tracer.metrics(),
            dropped_events: self.tracer.dropped_events(),
            session,
            profile: self.profiler.snapshot(),
        }
    }

    // ------------------------------------------------------------ pipeline

    /// Count one stream update into stats and telemetry (the caller owns
    /// stream order and graph application).
    #[inline]
    pub fn note_update(&mut self) {
        self.stats.updates += 1;
        self.tracer.count(0, Counter::Updates, 1);
    }

    /// Attribute graph-application wall time to this engine's stats.
    #[inline]
    pub fn note_apply(&mut self, dt: Duration) {
        self.stats.apply_time += dt;
    }

    /// Rebuild the algorithm's ADS from scratch (offline stage, and
    /// fallback after structural events like vertex-table growth); timed as
    /// ADS maintenance.
    pub fn rebuild(&mut self, g: &G) {
        let t = Instant::now();
        self.algo.rebuild(g, &self.q);
        self.stats.ads_time += t.elapsed();
    }

    /// `Update_ADS` wrapper: timed, with the resulting delta mirrored to
    /// the tracer (event payload `b` is the running update ordinal).
    pub fn ads_update(&mut self, g: &G, e: EdgeUpdate, is_insert: bool) -> AdsChange {
        let t = Instant::now();
        let change = self.algo.update_ads(g, &self.q, e, is_insert);
        self.stats.ads_time += t.elapsed();
        if change == AdsChange::Changed {
            self.tracer.count(0, Counter::AdsChanged, 1);
            self.tracer
                .event(0, EventKind::AdsDelta, 1, self.stats.updates);
        }
        change
    }

    /// `Find_Initial_Matches`: enumerate the matches already present in `g`
    /// (through the algorithm's candidate filter).
    pub fn initial_matches(&self, g: &G, collect: bool) -> StaticResult {
        static_match::enumerate_with_filter(
            g,
            &self.q,
            &AdsCandidates(&self.algo),
            self.algo.ignore_edge_labels(),
            collect,
            self.deadline,
        )
    }

    // ---------------------------------------------------------- classifier

    /// Stage-1 verdict for this engine's query: the edge's label triple
    /// matches no query edge (pure in `(Q, labels)` — see [`inter`]).
    #[inline]
    pub fn label_safe(&self, g: &G, e: &EdgeUpdate) -> bool {
        inter::label_safe(g, &self.q, e, self.algo.ignore_edge_labels())
    }

    /// Stage-2 verdict: endpoint degrees cannot support any compatible
    /// query edge. Call *before* applying an insert (prospective degrees)
    /// and *before* removing a delete.
    #[inline]
    pub fn degree_safe(&self, g: &G, e: &EdgeUpdate, is_insert: bool) -> bool {
        inter::degree_safe(g, &self.q, e, is_insert, self.algo.ignore_edge_labels())
    }

    /// Stage-3 verdict: no compatible oriented query edge has both
    /// endpoints structurally feasible and in the algorithm's candidate
    /// sets. For inserts call *after* [`Engine::ads_update`]; for deletes
    /// call while the edge is still present.
    #[inline]
    pub fn candidates_safe(&self, g: &G, e: &EdgeUpdate) -> bool {
        inter::candidates_safe(g, &self.q, &self.algo, e)
    }

    /// [`Engine::candidates_safe`] with the structural endpoint probes
    /// served from a cross-session [`inter::ProbeMemo`] (bit-identical
    /// verdicts; the serving layer's shared index passes one memo across
    /// all sessions of an update).
    pub fn candidates_safe_memo(&self, g: &G, e: &EdgeUpdate, memo: &mut inter::ProbeMemo) -> bool {
        inter::candidates_safe_memo(g, &self.q, &self.algo, e, memo)
    }

    /// Does the hosted algorithm ignore edge labels (CaLiG mode)? Exposed
    /// so a multi-query host can stage classification against a pattern
    /// union: the flag selects wildcard sub-pattern keys.
    #[inline]
    pub fn ignores_edge_labels(&self) -> bool {
        self.algo.ignore_edge_labels()
    }

    /// Absorb a match delta computed by another engine over the same
    /// `(graph, query, update)` triple — the serving layer's shared-index
    /// fan-out. Attributes the counts exactly as [`Engine::find_matches`]
    /// would (stats plus tracer counters) and tallies the reuse under
    /// [`Counter::SharedHit`]; no search runs.
    pub fn absorb_delta(&mut self, count: u64, positive: bool) {
        if positive {
            self.stats.positives += count;
            self.tracer.count(0, Counter::MatchesPos, count);
        } else {
            self.stats.negatives += count;
            self.tracer.count(0, Counter::MatchesNeg, count);
        }
        self.tracer.count(0, Counter::SharedHit, 1);
    }

    /// Note that this engine enumerated a delta that was published for
    /// same-group sessions to reuse ([`Counter::SharedMiss`]).
    pub fn note_shared_publish(&mut self) {
        self.tracer.count(0, Counter::SharedMiss, 1);
    }

    /// Record a classifier verdict in both `RunStats` and the tracer.
    #[inline]
    pub fn record_verdict(&mut self, c: Classified, idx: u64) {
        self.stats.classifier.record(c);
        self.tracer.count(0, trace::verdict_counter(c), 1);
        self.tracer
            .event(0, EventKind::Classify, trace::verdict_code(c), idx);
    }

    /// True when nothing observes this engine's bookkeeping per update:
    /// no rolling window is installed and the tracer records no events.
    /// In that regime label-safe fan-out bookkeeping is a set of
    /// commutative totals, so a multi-session host may accumulate it
    /// outside the engine and fold it in later with
    /// [`Engine::flush_label_safe`] — final stats and counters are
    /// bit-identical, only the moment they become visible moves.
    #[inline]
    pub fn defers_fan_bookkeeping(&self) -> bool {
        self.window.is_none() && self.tracer.level() < trace::TraceLevel::Full
    }

    /// Fold `n` deferred label-safe fan-outs (and their accumulated share
    /// of graph-apply wall time) into stats and counters, exactly as `n`
    /// interleaved [`Engine::note_update`] + [`Engine::note_apply`] +
    /// label-safe [`Engine::record_verdict`] calls would have. Only valid
    /// under [`Engine::defers_fan_bookkeeping`], where no per-update
    /// consumer can see the intermediate states.
    pub fn flush_label_safe(&mut self, n: u64, apply: Duration) {
        debug_assert!(self.defers_fan_bookkeeping());
        self.stats.updates += n;
        self.stats.apply_time += apply;
        self.stats.classifier.total += n;
        self.stats.classifier.safe_label += n;
        self.tracer.count(0, Counter::Updates, n);
        self.tracer.count(0, Counter::ClassLabelSafe, n);
    }

    /// Record a structural no-op in both `RunStats` and the tracer.
    #[inline]
    pub fn record_noop(&mut self, idx: u64) {
        self.stats.classifier.record_noop();
        self.tracer.count(0, Counter::ClassNoop, 1);
        self.tracer.event(0, EventKind::Classify, 4, idx);
    }

    // -------------------------------------------------------- enumeration

    /// Root-level seed tasks for the update's search tree: one per
    /// compatible oriented query edge whose endpoints pass the degree prune
    /// and the algorithm's candidate test.
    fn seeds_for(&self, g: &G, e: &EdgeUpdate) -> Vec<SeedTask> {
        let (la, lb) = (g.label(e.src), g.label(e.dst));
        let ignore = self.algo.ignore_edge_labels();
        self.q
            .seed_edges(la, lb, e.label, ignore)
            .filter(|&(u1, u2)| {
                g.degree(e.src) >= self.q.degree(u1)
                    && g.degree(e.dst) >= self.q.degree(u2)
                    && self.algo.is_candidate(g, &self.q, u1, e.src)
                    && self.algo.is_candidate(g, &self.q, u2, e.dst)
            })
            .map(|(u1, u2)| {
                let mut emb = Embedding::empty();
                emb.set(u1, e.src);
                emb.set(u2, e.dst);
                SeedTask {
                    order_idx: self.orders.seed_index(u1, u2),
                    depth: 2,
                    emb,
                }
            })
            .collect()
    }

    /// `Find_Matches`: enumerate all matches using the updated edge
    /// (which must be present in `g` — see the module docs for the
    /// insert/delete call conventions). `collect` materializes embeddings
    /// into [`FindOutcome::matches`]; pass `cfg.collect_matches` for the
    /// classic behaviour or `false` for count-only (degraded) enumeration.
    pub fn find_matches(&mut self, g: &G, e: &EdgeUpdate, collect: bool) -> FindOutcome {
        let seeds = self.seeds_for(g, e);
        if seeds.is_empty() {
            return FindOutcome::default();
        }
        let t0 = Instant::now();
        let result = if let Some(sim) = self.cfg.sim_threads {
            let out = inner::run_simulated(
                g,
                &self.q,
                &self.orders,
                &self.algo,
                self.deadline,
                seeds,
                InnerConfig {
                    num_threads: sim,
                    split_depth: self.cfg.split_depth,
                    load_balance: self.cfg.load_balance,
                    seed_task_factor: self.cfg.seed_task_factor,
                    collect,
                    cap: self.cfg.match_cap,
                    decompose: true,
                },
                &self.tracer,
                &self.profiler,
            );
            self.stats.nodes += out.nodes;
            self.stats.absorb_busy(&out.worker_busy);
            self.stats.tasks_executed += out.tasks;
            self.stats.find_span += out.span;
            self.stats.find_time += t0.elapsed();
            return FindOutcome {
                count: out.sink.count,
                matches: out.sink.matches,
                timed_out: out.timed_out,
            };
        } else if self.cfg.is_parallel() {
            let out = inner::run(
                g,
                &self.q,
                &self.orders,
                &self.algo,
                self.deadline,
                seeds,
                InnerConfig {
                    num_threads: self.cfg.num_threads,
                    split_depth: self.cfg.split_depth,
                    load_balance: self.cfg.load_balance,
                    seed_task_factor: self.cfg.seed_task_factor,
                    collect,
                    cap: self.cfg.match_cap,
                    decompose: true,
                },
                &self.tracer,
                &self.profiler,
            );
            self.stats.nodes += out.nodes;
            self.stats.absorb_busy(&out.thread_busy);
            self.stats.tasks_split += out.tasks_split;
            self.stats.tasks_executed += out.tasks_executed;
            FindOutcome {
                count: out.sink.count,
                matches: out.sink.matches,
                timed_out: out.timed_out,
            }
        } else {
            let mut sink = if collect {
                BufferSink::collecting()
            } else {
                BufferSink::counting()
            }
            .with_cap(self.cfg.match_cap);
            let mut stats = SearchStats::default();
            let frame = self.profiler.frame();
            for task in seeds {
                if let Some(fr) = &frame {
                    fr.set_order(task.order_idx);
                }
                let ctx = SearchCtx {
                    g,
                    q: &self.q,
                    order: self.orders.by_index(task.order_idx),
                    ignore_elabels: self.algo.ignore_edge_labels(),
                    deadline: self.deadline,
                    profile: frame.as_ref(),
                };
                let mut emb = task.emb;
                if !self
                    .algo
                    .search(&ctx, &mut emb, task.depth as usize, &mut sink, &mut stats)
                {
                    break;
                }
            }
            self.stats.nodes += stats.nodes;
            self.tracer.count(0, Counter::Nodes, stats.nodes);
            if stats.deadline_hits > 0 {
                self.tracer
                    .count(0, Counter::DeadlineFires, stats.deadline_hits);
                self.tracer
                    .event(0, EventKind::DeadlineFired, stats.nodes, 0);
            }
            FindOutcome {
                count: sink.count,
                matches: sink.matches,
                timed_out: stats.timed_out,
            }
        };
        let elapsed = t0.elapsed();
        self.stats.find_time += elapsed;
        self.stats.find_span += elapsed;
        result
    }

    // -------------------------------------------------------- observation

    /// Should each sequentially processed update be individually timed?
    pub fn per_update_timing(&self, has_observer: bool) -> bool {
        self.cfg.track_latency
            || self.cfg.slow_k > 0
            || has_observer
            || self.tracer.events_enabled()
    }

    /// `(ads_time, apply_time, find_time, nodes)` marker — take before an
    /// update, pass to [`Engine::finish_update`] after.
    #[inline]
    pub fn stage_snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            ads: self.stats.ads_time,
            apply: self.stats.apply_time,
            find: self.stats.find_time,
            nodes: self.stats.nodes,
        }
    }

    /// Per-update epilogue: slowest-K capture, `UpdateDone` event, and the
    /// observer callback. `obs.latency` of zero skips the slow-K capture
    /// (bulk-applied updates have no per-update latency by construction).
    pub fn finish_update(
        &mut self,
        upd: Update,
        obs: UpdateObservation,
        pre: StageSnapshot,
        observer: &mut dyn StreamObserver,
    ) {
        if obs.latency > Duration::ZERO {
            let su = SlowUpdate {
                index: obs.index,
                update: upd,
                latency: obs.latency,
                ads: self.stats.ads_time.saturating_sub(pre.ads),
                apply: self.stats.apply_time.saturating_sub(pre.apply),
                find: self.stats.find_time.saturating_sub(pre.find),
                nodes: self.stats.nodes - pre.nodes,
                span: obs.span,
            };
            let k = self.cfg.slow_k;
            self.stats.note_slow(k, su);
        }
        self.tracer.event(
            0,
            EventKind::UpdateDone,
            obs.index,
            obs.positives + obs.negatives,
        );
        if let Some(w) = &self.window {
            w.record(&obs);
        }
        observer.on_update(&obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::AdsChange;
    use csm_graph::{ELabel, QVertexId, VLabel, VertexId};

    struct Plain;
    impl CsmAlgorithm for Plain {
        fn name(&self) -> &'static str {
            "plain"
        }
        fn rebuild(&mut self, _: &DataGraph, _: &QueryGraph) {}
        fn update_ads(
            &mut self,
            _: &DataGraph,
            _: &QueryGraph,
            _: EdgeUpdate,
            _: bool,
        ) -> AdsChange {
            AdsChange::Unchanged
        }
        fn is_candidate(&self, _: &DataGraph, _: &QueryGraph, _: QVertexId, _: VertexId) -> bool {
            true
        }
    }

    fn triangle_setup() -> (DataGraph, QueryGraph, Vec<VertexId>) {
        let mut g = DataGraph::new();
        let v: Vec<_> = (0..3).map(|_| g.add_vertex(VLabel(0))).collect();
        g.insert_edge(v[0], v[1], ELabel(0)).unwrap();
        g.insert_edge(v[1], v[2], ELabel(0)).unwrap();
        let mut q = QueryGraph::new();
        let u: Vec<_> = (0..3).map(|_| q.add_vertex(VLabel(0))).collect();
        q.add_edge(u[0], u[1], ELabel(0)).unwrap();
        q.add_edge(u[1], u[2], ELabel(0)).unwrap();
        q.add_edge(u[0], u[2], ELabel(0)).unwrap();
        (g, q, v)
    }

    #[test]
    fn engine_rejects_invalid_config() {
        let (g, q, _) = triangle_setup();
        let mut cfg = ParaCosmConfig::sequential();
        cfg.batch_size = 0;
        match Engine::new(&g, q, Plain, cfg) {
            Err(CsmError::ConfigInvalid { field, .. }) => assert_eq!(field, "batch_size"),
            other => panic!("expected ConfigInvalid, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn engine_rejects_empty_query() {
        let g = DataGraph::new();
        let q = QueryGraph::new();
        assert!(matches!(
            Engine::new(&g, q, Plain, ParaCosmConfig::sequential()),
            Err(CsmError::ConfigInvalid { field: "query", .. })
        ));
    }

    #[test]
    fn shared_graph_insert_convention_finds_matches() {
        let (mut g, q, v) = triangle_setup();
        let mut eng = Engine::new(&g, q, Plain, ParaCosmConfig::sequential()).unwrap();
        let e = EdgeUpdate::new(v[0], v[2], ELabel(0));
        g.insert_edge(e.src, e.dst, e.label).unwrap();
        eng.ads_update(&g, e, true);
        let out = eng.find_matches(&g, &e, true);
        assert_eq!(out.count, 6);
        assert_eq!(out.matches.len(), 6);
        assert!(!out.timed_out);
        // Count-only enumeration returns the same ΔM without materializing.
        let out2 = eng.find_matches(&g, &e, false);
        assert_eq!(out2.count, 6);
        assert!(out2.matches.is_empty());
    }

    #[test]
    fn two_engines_share_one_graph_independently() {
        let (mut g, q, v) = triangle_setup();
        // Second query: a single edge (matches every edge both ways).
        let mut q2 = QueryGraph::new();
        let a = q2.add_vertex(VLabel(0));
        let b = q2.add_vertex(VLabel(0));
        q2.add_edge(a, b, ELabel(0)).unwrap();

        let mut tri = Engine::new(&g, q, Plain, ParaCosmConfig::sequential()).unwrap();
        let mut edge = Engine::new(&g, q2, Plain, ParaCosmConfig::sequential()).unwrap();

        let e = EdgeUpdate::new(v[0], v[2], ELabel(0));
        g.insert_edge(e.src, e.dst, e.label).unwrap();
        for eng in [&mut tri, &mut edge] {
            eng.ads_update(&g, e, true);
        }
        assert_eq!(tri.find_matches(&g, &e, false).count, 6);
        assert_eq!(edge.find_matches(&g, &e, false).count, 2);
    }

    #[test]
    fn classifier_wrappers_agree_with_inter() {
        let (g, q, v) = triangle_setup();
        let eng = Engine::new(&g, q.clone(), Plain, ParaCosmConfig::sequential()).unwrap();
        let e = EdgeUpdate::new(v[0], v[2], ELabel(0));
        assert_eq!(eng.label_safe(&g, &e), inter::label_safe(&g, &q, &e, false));
        assert_eq!(
            eng.degree_safe(&g, &e, true),
            inter::degree_safe(&g, &q, &e, true, false)
        );
    }
}
