//! Observability: sharded metrics, per-worker event rings, and exporters.
//!
//! The paper's evaluation (§5, Tables 3–4, Figs. 10/12) is an exercise in
//! *explaining* where time goes — ADS vs. `Find_Matches`, worker busy/idle
//! balance, classifier verdict mix. This module gives the engine a
//! low-overhead telemetry spine with three layers:
//!
//! * [`MetricsRegistry`] — named counters (plus a few gauges) sharded per
//!   worker. Each shard is cache-line-aligned and written by exactly one
//!   thread with relaxed atomics, so the hot path never contends; shards
//!   are summed only on [`Tracer::metrics`] snapshot.
//! * [`EventRing`] — a fixed-capacity per-worker ring of structured
//!   [`TraceEvent`]s (seed expansion, task pop/complete, split/donate,
//!   steal retries, deadline fires, classifier verdicts, ADS deltas) with
//!   relative-nanosecond timestamps. When full, the oldest events are
//!   overwritten and a drop counter keeps the books honest.
//! * exporters — a Chrome/Perfetto `trace_event` JSON writer
//!   ([`Tracer::perfetto_json`]), a Prometheus-style text snapshot
//!   ([`Tracer::prometheus_text`]), and a machine-readable [`RunReport`]
//!   (JSON) combining `RunStats`, latency-histogram buckets, classifier
//!   verdicts and per-worker counters.
//!
//! Everything is gated on [`TraceLevel`]: at `Off` the [`Tracer`] holds no
//! allocation and every call is a single branch on an `Option` (verified
//! by the `trace_off_overhead` row in EXPERIMENTS.md); at `Counters` the
//! registry is live; at `Full` event recording is on as well.
//!
//! Workers do not write to shared state per event: they accumulate into a
//! thread-local [`LocalTrace`] (plain `u64`s and a local buffer) and merge
//! once per executor run.

use crate::engine::RunStats;
use crate::inter::{Classified, SafeStage};
use csm_check::sync::atomic::{AtomicU64, Ordering};
use csm_check::sync::{Mutex, PoisonError};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod flight;
pub mod profile;
pub mod window;

/// How much telemetry the engine records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// No tracer is allocated; instrumentation sites reduce to one branch.
    #[default]
    Off,
    /// Sharded counters/gauges only — no event recording.
    Counters,
    /// Counters plus per-worker structured event rings.
    Full,
}

impl TraceLevel {
    /// Parse `off|counters|full` (CLI surface).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "counters" => Some(TraceLevel::Counters),
            "full" => Some(TraceLevel::Full),
            _ => None,
        }
    }
}

/// Counter identifiers. The discriminant doubles as the shard-array slot,
/// so incrementing is a single indexed relaxed `fetch_add` — no name
/// hashing on the hot path. Names surface only in snapshots/exporters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Graph updates processed.
    Updates,
    /// BFS seed-expansion steps in the inner executor's init phase.
    SeedExpansions,
    /// Subtree tasks popped from the shared queue.
    TasksPopped,
    /// Subtree tasks run to completion.
    TasksCompleted,
    /// Donation events (a worker re-split children onto the queue).
    TasksSplit,
    /// `Steal::Retry` collisions on the shared queue.
    StealRetries,
    /// Cooperative deadline fires observed by the search kernel.
    DeadlineFires,
    /// Search-tree nodes visited.
    Nodes,
    /// Positive (appearing) matches reported.
    MatchesPos,
    /// Negative (disappearing) matches reported.
    MatchesNeg,
    /// Classifier: safe at stage 1 (label).
    ClassLabelSafe,
    /// Classifier: safe at stage 2 (degree).
    ClassDegreeSafe,
    /// Classifier: safe at stage 3 (ADS/candidate).
    ClassAdsSafe,
    /// Classifier: unsafe (full processing).
    ClassUnsafe,
    /// Classifier: structural no-op (duplicate insert / phantom delete).
    ClassNoop,
    /// ADS maintenance calls that reported a state change.
    AdsChanged,
    /// Parallel bulk flushes of label-safe runs in the batch executor.
    BulkFlushes,
    /// Shared-index delta reuses: this engine absorbed another session's
    /// cached ΔM instead of enumerating (serving layer only).
    SharedHit,
    /// Shared-index delta computations: this engine enumerated a ΔM that
    /// was published for same-group sessions to reuse (serving layer only).
    SharedMiss,
}

/// Number of counter slots (keep in sync with [`Counter`]).
pub const NUM_COUNTERS: usize = 19;

/// Snapshot/exporter names, indexed by [`Counter`] discriminant.
pub const COUNTER_NAMES: [&str; NUM_COUNTERS] = [
    "updates",
    "seed_expansions",
    "tasks_popped",
    "tasks_completed",
    "tasks_split",
    "steal_retries",
    "deadline_fires",
    "nodes",
    "matches_pos",
    "matches_neg",
    "class_label_safe",
    "class_degree_safe",
    "class_ads_safe",
    "class_unsafe",
    "class_noop",
    "ads_changed",
    "bulk_flushes",
    "shared_hits",
    "shared_misses",
];

/// Gauge identifiers (registry-global, not sharded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Configured worker-thread count.
    Workers,
    /// Event-ring capacity per shard.
    RingCapacity,
    /// Batch size `k` of the batch executor.
    BatchSize,
}

/// Number of gauge slots (keep in sync with [`Gauge`]).
pub const NUM_GAUGES: usize = 3;

/// Gauge names, indexed by [`Gauge`] discriminant.
pub const GAUGE_NAMES: [&str; NUM_GAUGES] = ["workers", "ring_capacity", "batch_size"];

/// One cache-line-aligned block of counters, written by a single thread.
/// The alignment keeps neighboring shards out of each other's cache lines,
/// so relaxed increments never ping-pong ownership.
#[repr(align(128))]
struct Shard {
    counters: [AtomicU64; NUM_COUNTERS],
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Sharded counter/gauge registry. Shard 0 is the orchestrator (main
/// thread); shards `1..=n` belong to the inner executor's workers.
pub struct MetricsRegistry {
    shards: Vec<Shard>,
    gauges: [AtomicU64; NUM_GAUGES],
}

impl MetricsRegistry {
    /// A registry with `workers + 1` shards.
    pub fn new(workers: usize) -> MetricsRegistry {
        MetricsRegistry {
            shards: (0..workers + 1).map(|_| Shard::new()).collect(),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn clamp(&self, shard: usize) -> usize {
        shard.min(self.shards.len() - 1)
    }

    /// Add `n` to a counter on one shard (relaxed; the owner is the only
    /// writer).
    #[inline]
    pub fn add(&self, shard: usize, c: Counter, n: u64) {
        self.shards[self.clamp(shard)].counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Set a gauge.
    #[inline]
    pub fn set_gauge(&self, g: Gauge, v: u64) {
        self.gauges[g as usize].store(v, Ordering::Relaxed);
    }

    /// Merge all shards into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            per_shard: self
                .shards
                .iter()
                .map(|s| std::array::from_fn(|i| s.counters[i].load(Ordering::Relaxed)))
                .collect(),
            gauges: std::array::from_fn(|i| self.gauges[i].load(Ordering::Relaxed)),
        }
    }
}

/// A merged view of the registry at one instant.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values per shard (`[shard][Counter as usize]`).
    pub per_shard: Vec<[u64; NUM_COUNTERS]>,
    /// Gauge values.
    pub gauges: [u64; NUM_GAUGES],
}

impl MetricsSnapshot {
    /// Sum of one counter across all shards.
    pub fn total(&self, c: Counter) -> u64 {
        self.per_shard.iter().map(|s| s[c as usize]).sum()
    }

    /// One counter on one shard (0 when the shard does not exist).
    pub fn shard(&self, shard: usize, c: Counter) -> u64 {
        self.per_shard.get(shard).map_or(0, |s| s[c as usize])
    }
}

/// What happened, in one machine word. Payload meaning per kind is listed
/// on each variant as `(a, b)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Init-phase BFS expansion. `(depth, children materialized)`.
    SeedExpand,
    /// Worker popped a subtree task. `(order index, depth)`.
    TaskPop,
    /// Worker finished that task. `(nodes visited, matches reported)`.
    TaskDone,
    /// Worker donated children to the queue. `(children, depth)`.
    Split,
    /// Queue steal collided and retried. `(0, 0)`.
    StealRetry,
    /// The cooperative deadline fired. `(nodes so far, 0)`.
    DeadlineFired,
    /// Classifier verdict. `(verdict code — see [`verdict_code`], update index)`.
    Classify,
    /// ADS maintenance reported a state change. `(1, update index)`.
    AdsDelta,
    /// One stream update fully processed. `(update index, ΔM size)`.
    UpdateDone,
}

/// Stable wire code for a classifier verdict (`Classify` event payload and
/// `RunReport` JSON): 0 label-safe, 1 degree-safe, 2 ADS-safe, 3 unsafe,
/// 4 structural no-op.
pub fn verdict_code(c: Classified) -> u64 {
    match c {
        Classified::Safe(SafeStage::Label) => 0,
        Classified::Safe(SafeStage::Degree) => 1,
        Classified::Safe(SafeStage::Ads) => 2,
        Classified::Unsafe => 3,
    }
}

/// The registry counter a classifier verdict increments.
pub fn verdict_counter(c: Classified) -> Counter {
    match c {
        Classified::Safe(SafeStage::Label) => Counter::ClassLabelSafe,
        Classified::Safe(SafeStage::Degree) => Counter::ClassDegreeSafe,
        Classified::Safe(SafeStage::Ads) => Counter::ClassAdsSafe,
        Classified::Unsafe => Counter::ClassUnsafe,
    }
}

/// One structured event with a timestamp relative to the tracer's epoch.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Nanoseconds since [`Tracer`] creation.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (see [`EventKind`]).
    pub a: u64,
    /// Second payload word (see [`EventKind`]).
    pub b: u64,
}

/// Fixed-capacity overwrite-oldest ring of [`TraceEvent`]s.
pub struct EventRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    head: usize,
    dropped: u64,
}

impl EventRing {
    /// An empty ring holding at most `cap` events.
    pub fn new(cap: usize) -> EventRing {
        EventRing {
            buf: Vec::new(),
            cap: cap.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Append, overwriting the oldest event when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Drain the ring, returning events oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        let out = self.to_vec();
        self.buf.clear();
        self.head = 0;
        out
    }
}

/// Default per-shard event-ring capacity (events are 32 bytes, so this is
/// 1 MiB per shard at `Full`).
pub const DEFAULT_RING_CAPACITY: usize = 32_768;

struct TraceShared {
    level: TraceLevel,
    epoch: Instant,
    registry: MetricsRegistry,
    /// One ring per shard. Each is effectively single-writer (shard 0 =
    /// orchestrator, shard `w+1` = worker `w` merging after each run), so
    /// the mutexes are uncontended bookkeeping, not hot-path locks.
    rings: Vec<Mutex<EventRing>>,
}

/// Handle to one run's telemetry. Cheap to clone (an `Arc`); `Off` holds
/// nothing and reduces every call to a branch.
#[derive(Clone)]
pub struct Tracer {
    shared: Option<Arc<TraceShared>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("level", &self.level())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::off()
    }
}

impl Tracer {
    /// The disabled tracer: no allocation, every call a guard check.
    pub fn off() -> Tracer {
        Tracer { shared: None }
    }

    /// A tracer for `workers` inner-executor threads (plus the
    /// orchestrator shard) with the default ring capacity.
    pub fn new(level: TraceLevel, workers: usize) -> Tracer {
        Tracer::with_capacity(level, workers, DEFAULT_RING_CAPACITY)
    }

    /// As [`Tracer::new`] with an explicit per-shard ring capacity.
    pub fn with_capacity(level: TraceLevel, workers: usize, ring_cap: usize) -> Tracer {
        if level == TraceLevel::Off {
            return Tracer::off();
        }
        let registry = MetricsRegistry::new(workers);
        registry.set_gauge(Gauge::Workers, workers as u64);
        registry.set_gauge(Gauge::RingCapacity, ring_cap as u64);
        Tracer {
            shared: Some(Arc::new(TraceShared {
                level,
                epoch: Instant::now(),
                registry,
                rings: (0..workers + 1)
                    .map(|_| Mutex::new(EventRing::new(ring_cap)))
                    .collect(),
            })),
        }
    }

    /// The active level.
    pub fn level(&self) -> TraceLevel {
        self.shared.as_ref().map_or(TraceLevel::Off, |s| s.level)
    }

    /// Are counters live?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Is event recording live?
    #[inline]
    pub fn events_enabled(&self) -> bool {
        self.shared
            .as_ref()
            .is_some_and(|s| s.level == TraceLevel::Full)
    }

    /// Nanoseconds since tracer creation (0 when off).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.shared
            .as_ref()
            .map_or(0, |s| s.epoch.elapsed().as_nanos() as u64)
    }

    /// Number of shards (orchestrator + workers); 0 when off.
    pub fn num_shards(&self) -> usize {
        self.shared.as_ref().map_or(0, |s| s.rings.len())
    }

    /// Increment a counter on `shard` (0 = orchestrator, `w + 1` =
    /// worker `w`).
    #[inline]
    pub fn count(&self, shard: usize, c: Counter, n: u64) {
        if let Some(s) = &self.shared {
            s.registry.add(shard, c, n);
        }
    }

    /// Set a gauge.
    #[inline]
    pub fn gauge(&self, g: Gauge, v: u64) {
        if let Some(s) = &self.shared {
            s.registry.set_gauge(g, v);
        }
    }

    /// Record one event on `shard` (no-op below `Full`). The shard's ring
    /// mutex is single-writer in practice, so this never contends; workers
    /// on the hot path should still prefer a [`LocalTrace`].
    #[inline]
    pub fn event(&self, shard: usize, kind: EventKind, a: u64, b: u64) {
        if let Some(s) = &self.shared {
            if s.level == TraceLevel::Full {
                let ev = TraceEvent {
                    ts_ns: s.epoch.elapsed().as_nanos() as u64,
                    kind,
                    a,
                    b,
                };
                let idx = shard.min(s.rings.len() - 1);
                // Telemetry must never take the engine down: a ring whose
                // writer panicked is still structurally valid, so poison is
                // ignored here and below.
                s.rings[idx]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(ev);
            }
        }
    }

    /// A thread-local accumulator for `shard`. Always constructible and
    /// allocation-free; inactive (all calls are single branches) when the
    /// tracer is off.
    pub fn local(&self, shard: usize) -> LocalTrace {
        match &self.shared {
            None => LocalTrace::inactive(shard),
            Some(s) => LocalTrace {
                shard,
                active: true,
                events_on: s.level == TraceLevel::Full,
                epoch: s.epoch,
                counters: [0; NUM_COUNTERS],
                events: Vec::new(),
                cap: DEFAULT_RING_CAPACITY,
                dropped: 0,
            },
        }
    }

    /// Merge a [`LocalTrace`] back into the shared registry and rings.
    pub fn merge(&self, local: LocalTrace) {
        let Some(s) = &self.shared else { return };
        if !local.active {
            return;
        }
        for (i, &v) in local.counters.iter().enumerate() {
            if v > 0 {
                s.registry.shards[local.shard.min(s.registry.shards.len() - 1)].counters[i]
                    .fetch_add(v, Ordering::Relaxed);
            }
        }
        if local.events_on && (!local.events.is_empty() || local.dropped > 0) {
            let idx = local.shard.min(s.rings.len() - 1);
            let mut ring = s.rings[idx].lock().unwrap_or_else(PoisonError::into_inner);
            ring.dropped += local.dropped;
            for ev in local.events {
                ring.push(ev);
            }
        }
    }

    /// Merged counter/gauge snapshot (empty when off).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared
            .as_ref()
            .map_or_else(MetricsSnapshot::default, |s| s.registry.snapshot())
    }

    /// Copy of every shard's retained events, oldest first (empty when
    /// off or below `Full`).
    pub fn events(&self) -> Vec<Vec<TraceEvent>> {
        self.shared.as_ref().map_or_else(Vec::new, |s| {
            s.rings
                .iter()
                .map(|r| r.lock().unwrap_or_else(PoisonError::into_inner).to_vec())
                .collect()
        })
    }

    /// Drain every shard's ring, returning events oldest first.
    pub fn drain_events(&self) -> Vec<Vec<TraceEvent>> {
        self.shared.as_ref().map_or_else(Vec::new, |s| {
            s.rings
                .iter()
                .map(|r| r.lock().unwrap_or_else(PoisonError::into_inner).drain())
                .collect()
        })
    }

    /// Events overwritten per shard so far.
    pub fn dropped_events(&self) -> Vec<u64> {
        self.shared.as_ref().map_or_else(Vec::new, |s| {
            s.rings
                .iter()
                .map(|r| r.lock().unwrap_or_else(PoisonError::into_inner).dropped())
                .collect()
        })
    }

    // ------------------------------------------------------------ exporters

    /// Chrome/Perfetto `trace_event` JSON of the retained events.
    ///
    /// `TaskPop`/`TaskDone` pairs become complete (`"ph":"X"`) slices on
    /// the owning worker's track; everything else becomes an instant
    /// (`"ph":"i"`) event. Load the output at <https://ui.perfetto.dev> or
    /// `chrome://tracing`. Timestamps are microseconds since the tracer
    /// epoch.
    pub fn perfetto_json(&self) -> String {
        let shards = self.events();
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, s: String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&s);
        };
        for (tid, _) in shards.iter().enumerate() {
            let name = if tid == 0 {
                "orchestrator".to_string()
            } else {
                format!("worker-{}", tid - 1)
            };
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
            );
        }
        let us = |ns: u64| format!("{}.{:03}", ns / 1000, ns % 1000);
        for (tid, evs) in shards.iter().enumerate() {
            let mut open: Option<&TraceEvent> = None;
            for ev in evs {
                match ev.kind {
                    EventKind::TaskPop => open = Some(ev),
                    EventKind::TaskDone => {
                        // Pair with the most recent pop on this track; an
                        // unpaired done (ring overwrote its pop) degrades
                        // to an instant event.
                        if let Some(pop) = open.take() {
                            let dur = ev.ts_ns.saturating_sub(pop.ts_ns);
                            push(
                                &mut out,
                                format!(
                                    "{{\"name\":\"task\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
                                     \"ts\":{},\"dur\":{},\"args\":{{\"order\":{},\"depth\":{},\
                                     \"nodes\":{},\"matches\":{}}}}}",
                                    us(pop.ts_ns),
                                    us(dur),
                                    pop.a,
                                    pop.b,
                                    ev.a,
                                    ev.b
                                ),
                            );
                        } else {
                            push(
                                &mut out,
                                format!(
                                    "{{\"name\":\"task_done\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                                     \"tid\":{tid},\"ts\":{},\"args\":{{\"nodes\":{}}}}}",
                                    us(ev.ts_ns),
                                    ev.a
                                ),
                            );
                        }
                    }
                    _ => {
                        let name = match ev.kind {
                            EventKind::SeedExpand => "seed_expand",
                            EventKind::Split => "split",
                            EventKind::StealRetry => "steal_retry",
                            EventKind::DeadlineFired => "deadline",
                            EventKind::Classify => "classify",
                            EventKind::AdsDelta => "ads_delta",
                            EventKind::UpdateDone => "update",
                            EventKind::TaskPop | EventKind::TaskDone => unreachable!(),
                        };
                        push(
                            &mut out,
                            format!(
                                "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                                 \"tid\":{tid},\"ts\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
                                us(ev.ts_ns),
                                ev.a,
                                ev.b
                            ),
                        );
                    }
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Prometheus text-format snapshot of the registry: per-shard samples
    /// with a `shard` label plus a pre-summed `..._total` aggregate.
    pub fn prometheus_text(&self) -> String {
        let snap = self.metrics();
        let mut out = String::new();
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            let c = counter_from_index(i);
            out.push_str(&format!("# TYPE paracosm_{name} counter\n"));
            for (shard, vals) in snap.per_shard.iter().enumerate() {
                let label = if shard == 0 {
                    "main".to_string()
                } else {
                    format!("w{}", shard - 1)
                };
                out.push_str(&format!(
                    "paracosm_{name}{{shard=\"{label}\"}} {}\n",
                    vals[i]
                ));
            }
            out.push_str(&format!("paracosm_{name}_total {}\n", snap.total(c)));
        }
        for (i, name) in GAUGE_NAMES.iter().enumerate() {
            out.push_str(&format!(
                "# TYPE paracosm_{name} gauge\nparacosm_{name} {}\n",
                snap.gauges[i]
            ));
        }
        out
    }
}

fn counter_from_index(i: usize) -> Counter {
    use Counter::*;
    const ALL: [Counter; NUM_COUNTERS] = [
        Updates,
        SeedExpansions,
        TasksPopped,
        TasksCompleted,
        TasksSplit,
        StealRetries,
        DeadlineFires,
        Nodes,
        MatchesPos,
        MatchesNeg,
        ClassLabelSafe,
        ClassDegreeSafe,
        ClassAdsSafe,
        ClassUnsafe,
        ClassNoop,
        AdsChanged,
        BulkFlushes,
        SharedHit,
        SharedMiss,
    ];
    ALL[i]
}

/// Thread-local telemetry accumulator: plain integers and a bounded local
/// event buffer, merged into the shared [`Tracer`] once per executor run.
/// All methods are single-branch no-ops when inactive.
pub struct LocalTrace {
    shard: usize,
    active: bool,
    events_on: bool,
    epoch: Instant,
    counters: [u64; NUM_COUNTERS],
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl LocalTrace {
    fn inactive(shard: usize) -> LocalTrace {
        LocalTrace {
            shard,
            active: false,
            events_on: false,
            epoch: Instant::now(),
            counters: [0; NUM_COUNTERS],
            events: Vec::new(),
            cap: 0,
            dropped: 0,
        }
    }

    /// Is event recording on for this accumulator?
    #[inline]
    pub fn events_on(&self) -> bool {
        self.events_on
    }

    /// Add `n` to a local counter.
    #[inline]
    pub fn count(&mut self, c: Counter, n: u64) {
        if self.active {
            self.counters[c as usize] += n;
        }
    }

    /// Nanoseconds since the tracer epoch (0 when inactive).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        if self.events_on {
            self.epoch.elapsed().as_nanos() as u64
        } else {
            0
        }
    }

    /// Record one event with the current timestamp.
    #[inline]
    pub fn event(&mut self, kind: EventKind, a: u64, b: u64) {
        if self.events_on {
            let ts_ns = self.epoch.elapsed().as_nanos() as u64;
            self.event_at(ts_ns, kind, a, b);
        }
    }

    /// Record one event with an explicit timestamp (for spans measured
    /// around a region).
    #[inline]
    pub fn event_at(&mut self, ts_ns: u64, kind: EventKind, a: u64, b: u64) {
        if self.events_on {
            if self.events.len() >= self.cap {
                // Local buffers drop-newest; the shared ring's
                // overwrite-oldest semantics apply after merge.
                self.dropped += 1;
                return;
            }
            self.events.push(TraceEvent { ts_ns, kind, a, b });
        }
    }
}

// ---------------------------------------------------------------- observer

/// Per-update observation delivered to a [`StreamObserver`].
#[derive(Clone, Copy, Debug)]
pub struct UpdateObservation {
    /// Zero-based position in the stream.
    pub index: u64,
    /// Classifier verdict (`None` outside the batch executor, where no
    /// classification happens).
    pub verdict: Option<Classified>,
    /// The update was a structural no-op.
    pub noop: bool,
    /// End-to-end latency of this update. Zero for label-safe updates the
    /// batch executor classified and bulk-applied (their cost is shared
    /// across the whole flush and reported in `RunStats::bulk_time`).
    pub latency: Duration,
    /// Positive matches this update produced.
    pub positives: u64,
    /// Negative matches this update produced.
    pub negatives: u64,
    /// Enumeration was skipped by the serving layer's degradation ladder
    /// (the session's time budget was exhausted); ΔM for this update is
    /// unknown, not zero. Always `false` for standalone `ParaCosm` runs.
    pub skipped: bool,
    /// Flight-recorder causal span of this update
    /// ([`flight::SpanId::NONE`] outside the serving layer, which is the
    /// only place spans are minted today).
    pub span: flight::SpanId,
}

impl UpdateObservation {
    /// Size of the incremental result ΔM (positives + negatives).
    pub fn delta_m(&self) -> u64 {
        self.positives + self.negatives
    }
}

/// Callback hook for [`crate::ParaCosm::run_stream`] (and per-session ΔM
/// delivery in the `csm-service` serving layer): invoked once per stream
/// update, in stream order, on the orchestrator thread.
pub trait StreamObserver {
    /// One update was processed.
    fn on_update(&mut self, obs: &UpdateObservation);
}

/// The do-nothing observer.
pub struct NoopObserver;

impl StreamObserver for NoopObserver {
    fn on_update(&mut self, _: &UpdateObservation) {}
}

// --------------------------------------------------------------- RunReport

/// Serving-layer dimensions attached to a per-session [`RunReport`]: which
/// standing query produced it and how the session's time-budget
/// degradation ladder behaved. `None` on standalone `ParaCosm` reports.
#[derive(Clone, Debug, Default)]
pub struct SessionDims {
    /// Session id within the service.
    pub session_id: u64,
    /// Human-readable session label (query name / tenant).
    pub label: String,
    /// Updates whose `Find_Matches` overran the session's per-update
    /// budget.
    pub budget_overruns: u64,
    /// Updates enumerated count-only (first rung of the degradation
    /// ladder).
    pub degraded: u64,
    /// Updates skipped outright (second rung); ΔM for these is unknown.
    pub skipped: u64,
    /// Updates whose ΔM was absorbed from the service's shared index
    /// (another same-group session enumerated it first).
    pub shared_reuses: u64,
}

/// Machine-readable summary of one run: `RunStats` + latency-histogram
/// buckets + classifier verdicts + per-worker counters, rendered as JSON
/// by [`RunReport::to_json`]. Emitted by `repro observe --report-json`,
/// `paracosm-cli --report-json`, and buildable from any engine via
/// [`crate::ParaCosm::run_report`].
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Hosted algorithm name.
    pub algo: String,
    /// Configured worker threads.
    pub threads: usize,
    /// Stream outcome (when the report follows a `process_stream` run).
    pub outcome: Option<crate::framework::StreamOutcome>,
    /// Engine statistics.
    pub stats: RunStats,
    /// Registry snapshot.
    pub metrics: MetricsSnapshot,
    /// Events overwritten per shard (ring saturation indicator).
    pub dropped_events: Vec<u64>,
    /// Serving-layer session dimensions (`None` for standalone runs).
    pub session: Option<SessionDims>,
    /// Per-query-edge profiler aggregate (`None` when profiling is off).
    pub profile: Option<profile::cold::QueryProfile>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn ns(d: Duration) -> u128 {
    d.as_nanos()
}

impl RunReport {
    /// Serialize to a self-contained JSON object. Every duration is in
    /// nanoseconds; the schema is documented in DESIGN.md §3.7.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{");
        o.push_str("\"schema_version\":1");
        o.push_str(&format!(",\"algo\":\"{}\"", json_escape(&self.algo)));
        o.push_str(&format!(",\"threads\":{}", self.threads));

        if let Some(sess) = &self.session {
            o.push_str(&format!(
                ",\"session\":{{\"id\":{},\"label\":\"{}\",\"budget_overruns\":{},\
                 \"degraded\":{},\"skipped\":{},\"shared_reuses\":{}}}",
                sess.session_id,
                json_escape(&sess.label),
                sess.budget_overruns,
                sess.degraded,
                sess.skipped,
                sess.shared_reuses
            ));
        }

        if let Some(out) = &self.outcome {
            o.push_str(&format!(
                ",\"outcome\":{{\"positives\":{},\"negatives\":{},\"updates_applied\":{},\
                 \"timed_out\":{},\"elapsed_ns\":{}}}",
                out.positives,
                out.negatives,
                out.updates_applied,
                out.timed_out,
                ns(out.elapsed)
            ));
        } else {
            o.push_str(",\"outcome\":null");
        }

        let s = &self.stats;
        o.push_str(&format!(
            ",\"stats\":{{\"updates\":{},\"positives\":{},\"negatives\":{},\"nodes\":{},\
             \"ads_ns\":{},\"find_ns\":{},\"find_span_ns\":{},\"apply_ns\":{},\"bulk_ns\":{},\
             \"tasks_executed\":{},\"tasks_split\":{},\"timed_out\":{},\
             \"thread_busy_ns\":[{}]}}",
            s.updates,
            s.positives,
            s.negatives,
            s.nodes,
            ns(s.ads_time),
            ns(s.find_time),
            ns(s.find_span),
            ns(s.apply_time),
            ns(s.bulk_time),
            s.tasks_executed,
            s.tasks_split,
            s.timed_out,
            s.thread_busy
                .iter()
                .map(|d| ns(*d).to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));

        let c = &s.classifier;
        o.push_str(&format!(
            ",\"classifier\":{{\"total\":{},\"safe_label\":{},\"safe_degree\":{},\
             \"safe_ads\":{},\"unsafe\":{},\"noops\":{}}}",
            c.total, c.safe_label, c.safe_degree, c.safe_ads, c.unsafe_count, c.noops
        ));

        let h = &s.latency;
        o.push_str(&format!(
            ",\"latency\":{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\
             \"p99_ns\":{},\"max_ns\":{},\"buckets\":[{}]}}",
            h.count(),
            ns(h.mean()),
            ns(h.percentile(50.0)),
            ns(h.percentile(90.0)),
            ns(h.percentile(99.0)),
            ns(h.max()),
            h.nonzero_buckets()
                .map(|(ub, n)| format!("[{ub},{n}]"))
                .collect::<Vec<_>>()
                .join(",")
        ));

        o.push_str(",\"slowest\":[");
        for (i, su) in s.slowest.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "{{\"index\":{},\"update\":\"{}\",\"latency_ns\":{},\"ads_ns\":{},\
                 \"apply_ns\":{},\"find_ns\":{},\"nodes\":{},\"span\":{}}}",
                su.index,
                json_escape(&su.describe()),
                ns(su.latency),
                ns(su.ads),
                ns(su.apply),
                ns(su.find),
                su.nodes,
                su.span.0
            ));
        }
        o.push(']');

        o.push_str(",\"metrics\":{\"counters\":{");
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "\"{name}\":{}",
                self.metrics.total(counter_from_index(i))
            ));
        }
        o.push_str("},\"gauges\":{");
        for (i, name) in GAUGE_NAMES.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!("\"{name}\":{}", self.metrics.gauges[i]));
        }
        o.push_str("},\"per_shard\":[");
        for (i, shard) in self.metrics.per_shard.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "[{}]",
                shard
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        o.push_str(&format!(
            "],\"dropped_events\":[{}]}}",
            self.dropped_events
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
        match &self.profile {
            Some(p) => {
                o.push_str(",\"profile\":");
                o.push_str(&p.to_json());
            }
            None => o.push_str(",\"profile\":null"),
        }
        o.push('}');
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_is_inert() {
        let t = Tracer::off();
        assert!(!t.enabled());
        assert!(!t.events_enabled());
        t.count(0, Counter::Nodes, 5);
        t.event(0, EventKind::TaskPop, 1, 2);
        assert!(t.metrics().per_shard.is_empty());
        assert!(t.events().is_empty());
        let mut l = t.local(3);
        l.count(Counter::Nodes, 7);
        l.event(EventKind::Split, 0, 0);
        t.merge(l);
        assert!(t.metrics().per_shard.is_empty());
    }

    #[test]
    fn counters_level_records_no_events() {
        let t = Tracer::new(TraceLevel::Counters, 2);
        t.count(1, Counter::TasksPopped, 3);
        t.event(1, EventKind::TaskPop, 0, 0);
        let snap = t.metrics();
        assert_eq!(snap.total(Counter::TasksPopped), 3);
        assert_eq!(snap.shard(1, Counter::TasksPopped), 3);
        assert!(t.events().iter().all(|s| s.is_empty()));
    }

    #[test]
    fn shards_merge_on_snapshot() {
        let t = Tracer::new(TraceLevel::Counters, 3);
        for shard in 0..4 {
            t.count(shard, Counter::Nodes, 10 + shard as u64);
        }
        let snap = t.metrics();
        assert_eq!(snap.per_shard.len(), 4);
        assert_eq!(snap.total(Counter::Nodes), 10 + 11 + 12 + 13);
        // Out-of-range shards clamp to the last one instead of panicking.
        t.count(99, Counter::Nodes, 1);
        assert_eq!(t.metrics().shard(3, Counter::Nodes), 14);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = EventRing::new(3);
        for i in 0..5u64 {
            r.push(TraceEvent {
                ts_ns: i,
                kind: EventKind::StealRetry,
                a: i,
                b: 0,
            });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let v = r.drain();
        assert_eq!(v.iter().map(|e| e.a).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert!(r.is_empty());
    }

    #[test]
    fn local_trace_merges_counters_and_events() {
        let t = Tracer::new(TraceLevel::Full, 2);
        let mut l = t.local(2);
        l.count(Counter::TasksCompleted, 4);
        l.event(EventKind::TaskPop, 7, 2);
        l.event(EventKind::TaskDone, 100, 1);
        t.merge(l);
        assert_eq!(t.metrics().shard(2, Counter::TasksCompleted), 4);
        let evs = t.events();
        assert_eq!(evs[2].len(), 2);
        assert_eq!(evs[2][0].kind, EventKind::TaskPop);
        assert!(evs[2][0].ts_ns <= evs[2][1].ts_ns);
    }

    #[test]
    fn perfetto_pairs_pop_done_into_slices() {
        let t = Tracer::new(TraceLevel::Full, 1);
        let mut l = t.local(1);
        l.event_at(1_000, EventKind::TaskPop, 3, 2);
        l.event_at(5_000, EventKind::TaskDone, 42, 6);
        l.event_at(6_000, EventKind::Split, 4, 3);
        t.merge(l);
        let json = t.perfetto_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":4.000"));
        assert!(json.contains("\"name\":\"split\""));
        assert!(json.contains("worker-0"));
        // Crude structural sanity: balanced braces/brackets.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn prometheus_text_lists_all_counters() {
        let t = Tracer::new(TraceLevel::Counters, 1);
        t.count(0, Counter::Updates, 2);
        t.count(1, Counter::TasksPopped, 5);
        let text = t.prometheus_text();
        for name in COUNTER_NAMES {
            assert!(text.contains(&format!("paracosm_{name}_total")), "{name}");
        }
        assert!(text.contains("paracosm_updates{shard=\"main\"} 2"));
        assert!(text.contains("paracosm_tasks_popped{shard=\"w0\"} 5"));
        assert!(text.contains("# TYPE paracosm_workers gauge"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
