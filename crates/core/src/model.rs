//! The paper's theoretical analysis (§4.3): the speedup model of Eq. (1)–(3)
//! and the label-filter safe-update probability estimate.
//!
//! These closed forms let a deployment predict ParaCOSM's benefit from
//! workload statistics before running anything — the harness compares the
//! prediction against measured classifier ratios.

/// Parameters of the Eq. (1) cost model.
///
/// ```
/// use paracosm_core::model::CostModel;
/// // The paper's worked example: N = M = 10, γ = 0.4 reduces the runtime
/// // to |ΔG|·(0.64·T_ADS + 0.06·T_FM)  — Eq. (3).
/// let m = CostModel { updates: 1, gamma: 0.4, t_ads: 1.0, t_fm: 1.0, m: 10, n: 10 };
/// assert!((m.parallel_time() - 0.70).abs() < 1e-12);
/// assert!(m.predicted_speedup() > 1.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Number of updates `|ΔG|`.
    pub updates: u64,
    /// Ratio of safe updates `γ ∈ [0, 1]`.
    pub gamma: f64,
    /// Per-update auxiliary-structure maintenance time `T_ADS` (seconds).
    pub t_ads: f64,
    /// Per-update match-enumeration time `T_FM` (seconds).
    pub t_fm: f64,
    /// Threads devoted to ADS maintenance `M`.
    pub m: usize,
    /// Threads devoted to match search `N`.
    pub n: usize,
}

impl CostModel {
    /// Total parallel runtime `T_csm` per Eq. (1)/(2):
    ///
    /// ```text
    /// T = |ΔG| · [ (1 − γ)(T_ADS + T_FM/N) + γ·T_ADS/M ]
    /// ```
    ///
    /// Unsafe updates pay full ADS maintenance plus `N`-way parallel search;
    /// safe updates pay only `M`-way parallel ADS maintenance.
    pub fn parallel_time(&self) -> f64 {
        let g = self.gamma.clamp(0.0, 1.0);
        let unsafe_cost = (1.0 - g) * (self.t_ads + self.t_fm / self.n.max(1) as f64);
        let safe_cost = g * self.t_ads / self.m.max(1) as f64;
        self.updates as f64 * (unsafe_cost + safe_cost)
    }

    /// Single-threaded runtime: every update pays `T_ADS`, and the
    /// `(1 − γ)` unsafe fraction pays `T_FM` (safe updates produce no
    /// matches, so their enumeration is trivially empty in the baseline
    /// too — the baseline's win-less seed check).
    pub fn sequential_time(&self) -> f64 {
        let g = self.gamma.clamp(0.0, 1.0);
        self.updates as f64 * (self.t_ads + (1.0 - g) * self.t_fm)
    }

    /// Predicted speedup of ParaCOSM over the single-threaded baseline.
    pub fn predicted_speedup(&self) -> f64 {
        let p = self.parallel_time();
        if p <= 0.0 {
            1.0
        } else {
            self.sequential_time() / p
        }
    }
}

/// The §4.3 label-filter estimate of the *unsafe* probability under uniform
/// labels: inserting an edge is unsafe only if its label triple matches one
/// of the `|E(Q)|` query edges, each with probability
/// `1 / (|L(E)| · |L(V)|²)`.
///
/// Worked example from the paper: LiveJournal (`|L(V)| = 30`, `|L(E)| = 1`)
/// with a 6-edge query gives `P(unsafe) = 6/900 ≈ 0.667 %` (the paper prints
/// 0.677 % for the same expression) and `P(safe) ≥ 99.33 %`.
pub fn unsafe_probability(query_edges: usize, n_vlabels: usize, n_elabels: usize) -> f64 {
    let denom = (n_elabels.max(1) as f64) * (n_vlabels.max(1) as f64).powi(2);
    (query_edges as f64 / denom).min(1.0)
}

/// `P(safe) = 1 − P(unsafe)` under the same model.
pub fn safe_probability(query_edges: usize, n_vlabels: usize, n_elabels: usize) -> f64 {
    1.0 - unsafe_probability(query_edges, n_vlabels, n_elabels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_worked_example_eq3() {
        // N = M = 10, γ = 0.4 → T = |ΔG|(0.64·T_ADS + 0.06·T_FM) (Eq. 3).
        let m = CostModel {
            updates: 1,
            gamma: 0.4,
            t_ads: 1.0,
            t_fm: 0.0,
            m: 10,
            n: 10,
        };
        assert!((m.parallel_time() - 0.64).abs() < 1e-12);
        let m = CostModel {
            updates: 1,
            gamma: 0.4,
            t_ads: 0.0,
            t_fm: 1.0,
            m: 10,
            n: 10,
        };
        assert!((m.parallel_time() - 0.06).abs() < 1e-12);
    }

    #[test]
    fn papers_livejournal_safe_ratio() {
        // 6-edge query, |L(V)| = 30, |L(E)| = 1 → P(unsafe) = 6/900.
        let p = unsafe_probability(6, 30, 1);
        assert!((p - 6.0 / 900.0).abs() < 1e-12);
        assert!(safe_probability(6, 30, 1) > 0.993);
    }

    #[test]
    fn more_safe_updates_help_more() {
        let base = CostModel {
            updates: 100,
            gamma: 0.5,
            t_ads: 0.1,
            t_fm: 1.0,
            m: 8,
            n: 8,
        };
        let safer = CostModel {
            gamma: 0.99,
            ..base
        };
        assert!(safer.predicted_speedup() > base.predicted_speedup());
    }

    #[test]
    fn more_threads_never_hurt() {
        let few = CostModel {
            updates: 10,
            gamma: 0.9,
            t_ads: 0.1,
            t_fm: 1.0,
            m: 2,
            n: 2,
        };
        let many = CostModel {
            m: 32,
            n: 32,
            ..few
        };
        assert!(many.parallel_time() < few.parallel_time());
        assert!(many.predicted_speedup() > few.predicted_speedup());
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        assert_eq!(unsafe_probability(1000, 1, 1), 1.0);
        let m = CostModel {
            updates: 0,
            gamma: 2.0,
            t_ads: 1.0,
            t_fm: 1.0,
            m: 0,
            n: 0,
        };
        assert_eq!(m.parallel_time(), 0.0);
        assert_eq!(m.predicted_speedup(), 1.0);
    }
}
