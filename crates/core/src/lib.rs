//! # paracosm-core — the ParaCOSM parallel CSM framework
//!
//! A from-scratch Rust implementation of *ParaCOSM: A Parallel Framework for
//! Continuous Subgraph Matching* (ICPP '25). The framework hosts any CSM
//! algorithm that fits the general two-stage model (maintain an auxiliary
//! data structure, then enumerate incremental matches) and parallelizes it
//! on two levels:
//!
//! * **inner-update parallelism** ([`inner`]) — fine-grained decomposition
//!   of each update's search tree onto a work-stealing pool with adaptive
//!   task donation (paper §4.1, Algorithm 2);
//! * **inter-update parallelism** ([`inter`], [`ParaCosm::process_stream`])
//!   — a three-stage safe-update classifier plus a batch executor that
//!   applies safe updates in parallel and defers everything after the first
//!   unsafe update in a batch (paper §4.2, Fig. 6).
//!
//! Algorithms plug in through the [`CsmAlgorithm`] trait (the paper's "two
//! user functions": a traversal routine and a filtering rule); the five
//! baselines of the paper's evaluation live in the `csm-algos` crate.
//!
//! ```
//! use csm_graph::{DataGraph, QueryGraph, VLabel, ELabel, EdgeUpdate, Update};
//! use paracosm_core::{ParaCosm, ParaCosmConfig, CsmAlgorithm, AdsChange};
//! # use csm_graph::{QVertexId, VertexId};
//!
//! // A minimal index-free algorithm (GraphFlow-style).
//! struct Direct;
//! impl CsmAlgorithm for Direct {
//!     fn name(&self) -> &'static str { "direct" }
//!     fn rebuild(&mut self, _: &DataGraph, _: &QueryGraph) {}
//!     fn update_ads(&mut self, _: &DataGraph, _: &QueryGraph, _: EdgeUpdate, _: bool)
//!         -> AdsChange { AdsChange::Unchanged }
//!     fn is_candidate(&self, _: &DataGraph, _: &QueryGraph, _: QVertexId, _: VertexId)
//!         -> bool { true }
//! }
//!
//! // Data: path v0-v1; query: triangle; inserting v0-v2 and v1-v2 closes it.
//! let mut g = DataGraph::new();
//! let v: Vec<_> = (0..3).map(|_| g.add_vertex(VLabel(0))).collect();
//! g.insert_edge(v[0], v[1], ELabel(0)).unwrap();
//! let mut q = QueryGraph::new();
//! let u: Vec<_> = (0..3).map(|_| q.add_vertex(VLabel(0))).collect();
//! q.add_edge(u[0], u[1], ELabel(0)).unwrap();
//! q.add_edge(u[1], u[2], ELabel(0)).unwrap();
//! q.add_edge(u[0], u[2], ELabel(0)).unwrap();
//!
//! let mut engine = ParaCosm::new(g, q, Direct, ParaCosmConfig::parallel(2));
//! let r1 = engine
//!     .process_update(Update::InsertEdge(EdgeUpdate::new(v[0], v[2], ELabel(0))))
//!     .unwrap();
//! assert_eq!(r1.positives, 0); // no triangle yet
//! let r2 = engine
//!     .process_update(Update::InsertEdge(EdgeUpdate::new(v[1], v[2], ELabel(0))))
//!     .unwrap();
//! assert_eq!(r2.positives, 6); // one triangle × 6 automorphic mappings
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, deny(deprecated))]

pub mod algorithm;
pub mod canonical;
pub mod config;
pub mod embedding;
pub mod engine;
pub mod error;
pub mod framework;
pub mod inner;
pub mod inter;
pub mod kernel;
pub mod match_store;
pub mod metrics;
pub mod model;
pub mod order;
pub mod static_match;
pub mod trace;

pub use algorithm::{AdsCandidates, AdsChange, AlgorithmFactory, CsmAlgorithm};
pub use canonical::{AutomorphismGroup, CanonicalSink};
pub use config::ParaCosmConfig;
pub use embedding::{BufferSink, Embedding, Match, MatchSink, MAX_PATTERN_VERTICES};
pub use engine::{Engine, FindOutcome, RunStats, SlowUpdate, StageSnapshot};
pub use error::{CsmError, CsmResult};
pub use framework::{ParaCosm, StreamOutcome, UpdateOutcome};
pub use inner::{InnerConfig, InnerOutcome, SeedTask, SimOutcome};
pub use inter::{Classified, ClassifierStats, ProbeMemo, SafeStage};
pub use kernel::{CandidateFilter, NoFilter, SearchCtx, SearchStats};
pub use match_store::{MatchStore, StoreError};
pub use metrics::LatencyHistogram;
pub use order::{MatchingOrders, SeedOrder};
pub use static_match::StaticResult;
pub use trace::flight::cold::{FlightConfig, FlightEvent, FlightSnapshot};
pub use trace::flight::{FanKind, FlightRecorder, FlightStage, SpanId, SESSION_AGGREGATE};
pub use trace::profile::cold::{DepthProfile, OrderProfile, QueryProfile};
pub use trace::profile::{
    profile_counter_from_index, BackwardMeta, ProfileCounter, ProfileLevel, Profiler,
    NUM_PROFILE_COUNTERS, PROFILE_COUNTER_NAMES,
};
pub use trace::window::{
    SharedWindow, WindowConfig, WindowCounter, WindowRing, WindowSnapshot, NUM_WINDOW_COUNTERS,
    WINDOW_COUNTER_NAMES,
};
pub use trace::{
    Counter, EventKind, EventRing, Gauge, LocalTrace, MetricsRegistry, MetricsSnapshot,
    NoopObserver, RunReport, SessionDims, StreamObserver, TraceEvent, TraceLevel, Tracer,
    UpdateObservation,
};
