//! Runtime configuration of the ParaCOSM framework.

use crate::error::{CsmError, CsmResult};
use crate::trace::profile::ProfileLevel;
use crate::trace::window::WindowConfig;
use crate::trace::TraceLevel;
use std::time::Duration;

/// Tunables for a ParaCOSM run (paper §4; Algorithm 2 globals).
///
/// The struct is `#[non_exhaustive]`: construct it through the presets
/// ([`ParaCosmConfig::sequential`], [`ParaCosmConfig::parallel`],
/// [`ParaCosmConfig::simulated`]) plus the builder-style setters, then
/// adjust individual fields as needed. Builder output is always valid
/// (setters clamp instead of storing zeros); direct field writes are
/// checked by [`ParaCosmConfig::validate`] when an engine is built, so a
/// zero thread count or batch size surfaces as
/// [`CsmError::ConfigInvalid`] instead of a hang or a panic downstream.
///
/// # Examples
///
/// ```
/// use paracosm_core::ParaCosmConfig;
/// use std::time::Duration;
///
/// let cfg = ParaCosmConfig::parallel(4)
///     .with_batch_size(256)
///     .with_time_limit(Duration::from_secs(60));
/// assert!(cfg.validate().is_ok());
///
/// let mut bad = ParaCosmConfig::sequential();
/// bad.batch_size = 0; // raw field write: caught by validate()
/// assert!(bad.validate().is_err());
/// ```
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ParaCosmConfig {
    /// Worker threads for the inner-update executor. `1` selects the pure
    /// sequential path (the single-threaded baseline of the paper's
    /// experiments).
    pub num_threads: usize,
    /// `SPLIT_DEPTH` from Algorithm 2: search-tree levels (counted from the
    /// root) within which a worker may donate subtrees to the concurrent
    /// queue when idle threads are observed.
    pub split_depth: usize,
    /// Adaptive task-sharing on/off. Disabling reproduces the "unbalanced"
    /// condition of paper Fig. 10: the initial BFS decomposition is still
    /// performed, but workers never re-split afterwards.
    pub load_balance: bool,
    /// Inter-update parallelism (safe-update batching, paper §4.2) on/off.
    pub inter_update: bool,
    /// Batch size `k` for the batch executor.
    pub batch_size: usize,
    /// Stop enumerating after this many matches per update (guards against
    /// combinatorial blow-ups in stress tests; `None` = unbounded, as in the
    /// paper).
    pub match_cap: Option<u64>,
    /// Wall-clock budget for one query run; exceeding it marks the run as a
    /// timeout (the paper's one-hour success-rate criterion, scaled).
    pub time_limit: Option<Duration>,
    /// Collect full embeddings (tests / applications) instead of counting
    /// only (benchmarks).
    pub collect_matches: bool,
    /// The BFS initialization phase keeps decomposing until the task queue
    /// holds at least `seed_task_factor × num_threads` subtrees.
    pub seed_task_factor: usize,
    /// Record per-update latency into `RunStats::latency` (adds one clock
    /// read per update; off by default for benchmark purity).
    pub track_latency: bool,
    /// Observability level (see [`crate::trace`]): `Off` costs one branch
    /// per instrumentation site, `Counters` keeps the sharded registry
    /// live, `Full` also records per-worker structured events.
    pub trace: TraceLevel,
    /// Capture the `k` slowest updates (with stage breakdown and nodes
    /// visited) into `RunStats::slowest`. `0` disables the capture.
    pub slow_k: usize,
    /// Virtual-scheduler mode: when `Some(n)`, `Find_Matches` runs through
    /// `inner::run_simulated` with `n` virtual workers instead of real
    /// threads, and [`crate::RunStats::find_span`] accumulates the simulated
    /// parallel makespan. Used for thread-scaling experiments on hosts with
    /// fewer cores than the paper's testbed (see DESIGN.md substitutions).
    pub sim_threads: Option<usize>,
    /// Rolling-window telemetry (see [`crate::trace::window`]): when
    /// `Some`, the engine feeds every update observation into a
    /// [`crate::WindowRing`] for live scraping. `None` (the default) costs
    /// a single branch per update, like [`TraceLevel::Off`].
    pub window: Option<WindowConfig>,
    /// Query-profiler level (see [`crate::trace::profile`]): `Off` (the
    /// default) costs one branch per instrumentation site; `Counters`
    /// attributes enumeration cost per (query edge, order depth); `Full`
    /// additionally keeps the serving layer's cardinality catalog live.
    pub profile: ProfileLevel,
}

impl Default for ParaCosmConfig {
    fn default() -> Self {
        ParaCosmConfig {
            num_threads: 1,
            split_depth: 4,
            load_balance: true,
            inter_update: false,
            batch_size: 1024,
            match_cap: None,
            time_limit: None,
            collect_matches: false,
            seed_task_factor: 4,
            track_latency: false,
            trace: TraceLevel::Off,
            slow_k: 0,
            sim_threads: None,
            window: None,
            profile: ProfileLevel::Off,
        }
    }
}

impl ParaCosmConfig {
    /// The single-threaded baseline configuration.
    pub fn sequential() -> Self {
        Self::default()
    }

    /// The full ParaCOSM configuration with `n` threads: inner-update
    /// parallelism with load balancing plus inter-update batching.
    pub fn parallel(n: usize) -> Self {
        ParaCosmConfig {
            num_threads: n.max(1),
            inter_update: n > 1,
            ..Self::default()
        }
    }

    /// Builder-style setter for the time limit.
    pub fn with_time_limit(mut self, d: Duration) -> Self {
        self.time_limit = Some(d);
        self
    }

    /// Builder-style setter for match collection.
    pub fn collecting(mut self) -> Self {
        self.collect_matches = true;
        self
    }

    /// Builder-style setter for the batch size.
    pub fn with_batch_size(mut self, k: usize) -> Self {
        self.batch_size = k.max(1);
        self
    }

    /// Builder-style setter for the observability level.
    pub fn tracing(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Builder-style setter for the slowest-updates capture depth.
    pub fn with_slow_k(mut self, k: usize) -> Self {
        self.slow_k = k;
        self
    }

    /// Builder-style setter for rolling-window telemetry.
    pub fn windowed(mut self, w: WindowConfig) -> Self {
        self.window = Some(w);
        self
    }

    /// Builder-style setter for the query-profiler level.
    pub fn profiled(mut self, level: ProfileLevel) -> Self {
        self.profile = level;
        self
    }

    /// Is the inner-update executor in play?
    pub fn is_parallel(&self) -> bool {
        self.num_threads > 1
    }

    /// Should `process_stream` route through the batch executor?
    /// True when inter-update parallelism is enabled and the run is
    /// parallel — with real threads or virtual (simulated) workers.
    pub fn use_batch_executor(&self) -> bool {
        self.inter_update && (self.is_parallel() || self.sim_threads.is_some_and(|n| n > 1))
    }

    /// Virtual-scheduler preset: `n` simulated workers, single real thread,
    /// inter-update batching enabled (its wins are classifier-driven and
    /// host-independent).
    pub fn simulated(n: usize) -> Self {
        ParaCosmConfig {
            num_threads: 1,
            sim_threads: Some(n.max(1)),
            inter_update: n > 1,
            ..Self::default()
        }
    }

    /// Builder-style setter for the worker-thread count (clamped to ≥ 1;
    /// use [`ParaCosmConfig::parallel`] to also enable inter-update
    /// batching).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.num_threads = n.max(1);
        self
    }

    /// Check the configuration for values that would misbehave downstream:
    /// zero thread counts (the executor would have no workers), zero batch
    /// sizes (the batch loop would never advance), zero time limits or
    /// simulated-worker counts. Engine constructors
    /// ([`crate::ParaCosm::try_new`], [`crate::Engine::new`]) call this, so
    /// raw field writes are caught at build time with
    /// [`CsmError::ConfigInvalid`] rather than hanging a run.
    pub fn validate(&self) -> CsmResult<()> {
        let invalid = |field: &'static str, reason: &str| {
            Err(CsmError::ConfigInvalid {
                field,
                reason: reason.to_string(),
            })
        };
        if self.num_threads == 0 {
            return invalid(
                "num_threads",
                "must be >= 1 (1 selects the sequential path)",
            );
        }
        if self.batch_size == 0 {
            return invalid("batch_size", "must be >= 1 (the batch loop cannot advance)");
        }
        if self.time_limit == Some(Duration::ZERO) {
            return invalid(
                "time_limit",
                "a zero budget times out before any work; use None",
            );
        }
        if self.sim_threads == Some(0) {
            return invalid(
                "sim_threads",
                "must be >= 1 virtual workers; use None to disable",
            );
        }
        if self.seed_task_factor == 0 {
            return invalid("seed_task_factor", "must be >= 1 (BFS init needs a target)");
        }
        if let Some(w) = self.window {
            if w.epoch_width == Duration::ZERO {
                return invalid("window", "epoch_width must be non-zero");
            }
            if w.num_epochs == 0 {
                return invalid("window", "num_epochs must be >= 1");
            }
        }
        Ok(())
    }

    /// Consume and return the configuration if valid ([`Self::validate`]).
    pub fn validated(self) -> CsmResult<Self> {
        self.validate().map(|()| self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_preset_enables_both_levels() {
        let c = ParaCosmConfig::parallel(8);
        assert_eq!(c.num_threads, 8);
        assert!(c.inter_update);
        assert!(c.load_balance);
        assert!(c.is_parallel());
    }

    #[test]
    fn parallel_of_one_is_sequential() {
        let c = ParaCosmConfig::parallel(1);
        assert!(!c.inter_update);
        assert!(!c.is_parallel());
    }

    #[test]
    fn builders_compose() {
        let c = ParaCosmConfig::sequential()
            .with_time_limit(Duration::from_millis(5))
            .with_batch_size(0)
            .collecting();
        assert_eq!(c.time_limit, Some(Duration::from_millis(5)));
        assert_eq!(c.batch_size, 1); // clamped
        assert!(c.collect_matches);
    }

    #[test]
    fn validate_rejects_zeros_with_field_context() {
        use crate::error::CsmError;
        let mut c = ParaCosmConfig::sequential();
        assert!(c.validate().is_ok());
        c.num_threads = 0;
        match c.validate() {
            Err(CsmError::ConfigInvalid { field, .. }) => assert_eq!(field, "num_threads"),
            other => panic!("expected ConfigInvalid, got {other:?}"),
        }
        c.num_threads = 1;
        c.batch_size = 0;
        assert!(c.validate().is_err());
        c.batch_size = 1;
        c.time_limit = Some(Duration::ZERO);
        assert!(c.validate().is_err());
        c.time_limit = None;
        c.sim_threads = Some(0);
        assert!(c.validate().is_err());
        c.sim_threads = None;
        c.seed_task_factor = 0;
        assert!(c.validate().is_err());
        c.seed_task_factor = 4;
        assert!(c.validated().is_ok());
    }

    #[test]
    fn builders_always_produce_valid_configs() {
        for n in [0usize, 1, 2, 64] {
            assert!(ParaCosmConfig::parallel(n).validate().is_ok());
            assert!(ParaCosmConfig::simulated(n).validate().is_ok());
            assert!(ParaCosmConfig::sequential()
                .with_threads(n)
                .with_batch_size(n)
                .validate()
                .is_ok());
        }
    }

    #[test]
    fn tracing_builder_sets_level() {
        let c = ParaCosmConfig::parallel(4)
            .tracing(TraceLevel::Full)
            .with_slow_k(5);
        assert_eq!(c.trace, TraceLevel::Full);
        assert_eq!(c.slow_k, 5);
        assert_eq!(ParaCosmConfig::default().trace, TraceLevel::Off);
    }

    #[test]
    fn profile_builder_sets_level_and_defaults_off() {
        let c = ParaCosmConfig::parallel(2).profiled(ProfileLevel::Counters);
        assert_eq!(c.profile, ProfileLevel::Counters);
        assert!(c.validate().is_ok());
        assert_eq!(ParaCosmConfig::default().profile, ProfileLevel::Off);
    }
}
