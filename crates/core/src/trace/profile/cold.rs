//! Cold half of the query profiler: construction, snapshotting, and the
//! JSON / Prometheus / EXPLAIN exporters.
//!
//! Everything here runs off the enumeration path — at engine build time,
//! on a telemetry scrape, or when a report is rendered — so it is free
//! to allocate. The hot half (`profile.rs`) is lint-locked against
//! allocation; keep any new convenience that needs `Vec`/`String`/
//! `format!` on this side of the split.

use super::{
    BackwardMeta, DepthMeta, OrderMeta, ProfileCounter, ProfileLevel, ProfileShared, Profiler,
    NUM_PROFILE_COUNTERS, PROFILE_COUNTER_NAMES,
};
use crate::embedding::MAX_PATTERN_VERTICES;
use crate::order::MatchingOrders;
use csm_check::sync::atomic::AtomicU64;
use csm_graph::QueryGraph;
use std::sync::Arc;

impl Profiler {
    /// Build a profiler for `q`'s matching orders at `level`.
    /// `ProfileLevel::Off` returns the no-op handle — no grid is
    /// allocated and [`Profiler::frame`] yields `None`.
    pub fn new(level: ProfileLevel, q: &QueryGraph, orders: &MatchingOrders) -> Profiler {
        if level == ProfileLevel::Off {
            return Profiler::off();
        }
        let metas: Vec<OrderMeta> = (0..orders.len())
            .map(|i| {
                let o = orders.by_index(i as u16);
                let depths = (0..o.len())
                    .map(|d| DepthMeta {
                        qvertex: o.order[d].index() as u32,
                        vlabel: o.target_label[d].0,
                        backward: o.backward[d]
                            .iter()
                            .map(|&(src, el)| BackwardMeta {
                                src_qvertex: src.index() as u32,
                                src_vlabel: q.label(src).0,
                                elabel: el.0,
                            })
                            .collect(),
                    })
                    .collect();
                let seed = (o.order[0], o.order[1]);
                OrderMeta {
                    seed: (seed.0.index() as u32, seed.1.index() as u32),
                    seed_elabel: q.edge_label(seed.0, seed.1).map_or(0, |l| l.0),
                    depths,
                }
            })
            .collect();
        let n_cells = metas.len() * MAX_PATTERN_VERTICES * NUM_PROFILE_COUNTERS;
        let cells: Box<[AtomicU64]> = (0..n_cells).map(|_| AtomicU64::new(0)).collect();
        Profiler {
            shared: Some(Arc::new(ProfileShared {
                level,
                orders: metas,
                cells,
            })),
        }
    }

    /// Snapshot the attribution grid, or `None` when off.
    pub fn snapshot(&self) -> Option<QueryProfile> {
        self.shared.as_ref().map(|s| s.snapshot())
    }
}

impl ProfileShared {
    /// A consistent-enough point-in-time copy of the grid (relaxed
    /// loads; frames flush whole blocks, so per-order numbers are
    /// coherent between updates).
    pub fn snapshot(&self) -> QueryProfile {
        let orders = (0..self.orders.len())
            .map(|i| {
                let m = self.meta(i);
                let depths = (0..m.depths.len())
                    .map(|d| {
                        let mut counters = [0u64; NUM_PROFILE_COUNTERS];
                        for (ci, c) in counters.iter_mut().enumerate() {
                            *c = self.get(i, d, super::profile_counter_from_index(ci));
                        }
                        DepthProfile {
                            depth: d,
                            qvertex: m.depths[d].qvertex,
                            vlabel: m.depths[d].vlabel,
                            backward: m.depths[d].backward.clone(),
                            counters,
                            estimate: None,
                        }
                    })
                    .collect();
                OrderProfile {
                    index: i as u16,
                    seed: m.seed,
                    seed_elabel: m.seed_elabel,
                    depths,
                }
            })
            .collect();
        QueryProfile {
            level: self.level(),
            orders,
        }
    }
}

/// Point-in-time profile of one depth of one matching order.
#[derive(Clone, Debug)]
pub struct DepthProfile {
    /// Order depth (0 = first seed endpoint).
    pub depth: usize,
    /// Query vertex matched at this depth.
    pub qvertex: u32,
    /// Its vertex label.
    pub vlabel: u32,
    /// Backward constraints of this depth (static metadata, carried so
    /// catalog estimators need nothing but the profile itself).
    pub backward: Vec<BackwardMeta>,
    /// Counter values, indexed by [`ProfileCounter`] discriminant.
    pub counters: [u64; NUM_PROFILE_COUNTERS],
    /// Catalog-estimated candidate cardinality for this depth, if an
    /// estimator was applied ([`QueryProfile::apply_estimates`]).
    pub estimate: Option<f64>,
}

impl DepthProfile {
    /// One counter by id.
    #[inline]
    pub fn get(&self, c: ProfileCounter) -> u64 {
        self.counters[c as usize]
    }

    /// Mean candidates emitted per invocation — the observed
    /// cardinality the catalog estimate is judged against. `None`
    /// before the depth has ever been entered.
    pub fn observed_card(&self) -> Option<f64> {
        let inv = self.get(ProfileCounter::Invocations);
        if inv == 0 {
            None
        } else {
            Some(self.get(ProfileCounter::Extensions) as f64 / inv as f64)
        }
    }

    /// Attributed enumeration cost of this depth: work actually done by
    /// the candidate generator (slice streaming + probes + gallop
    /// steps) plus the extensions it emitted.
    pub fn cost(&self) -> u64 {
        self.get(ProfileCounter::SliceWidth)
            + self.get(ProfileCounter::ProbeSteps)
            + self.get(ProfileCounter::GallopSteps)
            + self.get(ProfileCounter::Extensions)
    }
}

/// Point-in-time profile of one matching order (= one oriented query
/// edge, the order's seed).
#[derive(Clone, Debug)]
pub struct OrderProfile {
    /// Order index (stable task-descriptor identity).
    pub index: u16,
    /// Oriented seed edge `(u_a, u_b)`.
    pub seed: (u32, u32),
    /// Seed edge label.
    pub seed_elabel: u32,
    /// Per-depth breakdown.
    pub depths: Vec<DepthProfile>,
}

impl OrderProfile {
    /// Total attributed cost across depths.
    pub fn cost(&self) -> u64 {
        self.depths.iter().map(DepthProfile::cost).sum()
    }

    /// Deadline fires attributed to this order.
    pub fn deadline_hits(&self) -> u64 {
        self.depths
            .iter()
            .map(|d| d.get(ProfileCounter::DeadlineHits))
            .sum()
    }
}

/// Aggregate per-query profile: every matching order's attribution
/// grid, ready for ranking, reconciliation, and export.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// Level the grid was recorded at.
    pub level: ProfileLevel,
    /// One entry per oriented seed order.
    pub orders: Vec<OrderProfile>,
}

impl QueryProfile {
    /// Column sums across every order and depth, indexed by
    /// [`ProfileCounter`] discriminant. `/profile` reconciliation
    /// compares these against the engine's `SearchStats`-derived
    /// totals.
    pub fn totals(&self) -> [u64; NUM_PROFILE_COUNTERS] {
        let mut t = [0u64; NUM_PROFILE_COUNTERS];
        for o in &self.orders {
            for d in &o.depths {
                for (ti, v) in t.iter_mut().zip(d.counters.iter()) {
                    *ti += v;
                }
            }
        }
        t
    }

    /// Total attributed cost.
    pub fn total_cost(&self) -> u64 {
        self.orders.iter().map(OrderProfile::cost).sum()
    }

    /// Orders ranked by attributed cost, most expensive first (ties
    /// break on order index for determinism).
    pub fn ranked(&self) -> Vec<&OrderProfile> {
        let mut v: Vec<&OrderProfile> = self.orders.iter().collect();
        v.sort_by(|a, b| b.cost().cmp(&a.cost()).then(a.index.cmp(&b.index)));
        v
    }

    /// The most expensive order, if any cost was recorded.
    pub fn top_order(&self) -> Option<&OrderProfile> {
        self.ranked().into_iter().find(|o| o.cost() > 0)
    }

    /// Attach catalog estimates: `f` sees each depth profile (labels +
    /// backward structure) and returns the estimated candidate
    /// cardinality. Keeps `paracosm_core` decoupled from whichever
    /// graph-side catalog produces the numbers.
    pub fn apply_estimates<F: FnMut(&DepthProfile) -> Option<f64>>(&mut self, mut f: F) {
        for o in &mut self.orders {
            for d in &mut o.depths {
                d.estimate = f(d);
            }
        }
    }

    /// Full profile as JSON (the `/profile` document body per session).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str(&format!("{{\"level\":\"{}\"", self.level.name()));
        s.push_str(&format!(",\"total_cost\":{}", self.total_cost()));
        s.push_str(",\"totals\":{");
        let totals = self.totals();
        for (i, name) in PROFILE_COUNTER_NAMES.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", name, totals[i]));
        }
        s.push_str("},\"orders\":[");
        for (i, o) in self.orders.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_order_json(&mut s, o);
        }
        s.push_str("]}");
        s
    }

    /// EXPLAIN document: oriented query edges ranked by attributed
    /// cost, each with its per-depth estimate-vs-observed table. Used
    /// by `/debug/explain/<session>` and `paracosm-cli explain`.
    pub fn explain_json(&self) -> String {
        let total = self.total_cost().max(1);
        let mut s = String::with_capacity(1024);
        s.push_str(&format!(
            "{{\"level\":\"{}\",\"total_cost\":{},\"edges\":[",
            self.level.name(),
            self.total_cost()
        ));
        for (i, o) in self.ranked().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rank\":{},\"order\":{},\"seed\":[{},{}],\"elabel\":{},\"cost\":{},\"cost_share\":{:.4},\"deadline_hits\":{}",
                i,
                o.index,
                o.seed.0,
                o.seed.1,
                o.seed_elabel,
                o.cost(),
                o.cost() as f64 / total as f64,
                o.deadline_hits()
            ));
            s.push_str(",\"depths\":[");
            for (j, d) in o.depths.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                push_depth_json(&mut s, d);
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// Prometheus text-format families (`paracosm_profile_*`), labelled
    /// by order index, seed edge, and depth. Zero cells are skipped to
    /// keep scrapes proportional to actual work done.
    pub fn prometheus_text(&self, out: &mut String) {
        for (ci, name) in PROFILE_COUNTER_NAMES.iter().enumerate() {
            out.push_str(&format!("# TYPE paracosm_profile_{name} counter\n"));
            for o in &self.orders {
                for d in &o.depths {
                    let v = d.counters[ci];
                    if v == 0 {
                        continue;
                    }
                    out.push_str(&format!(
                        "paracosm_profile_{name}{{order=\"{}\",seed=\"{}-{}\",depth=\"{}\"}} {v}\n",
                        o.index, o.seed.0, o.seed.1, d.depth
                    ));
                }
            }
        }
    }
}

fn push_depth_json(s: &mut String, d: &DepthProfile) {
    s.push_str(&format!(
        "{{\"depth\":{},\"qvertex\":{},\"vlabel\":{}",
        d.depth, d.qvertex, d.vlabel
    ));
    s.push_str(",\"backward\":[");
    for (i, b) in d.backward.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"src\":{},\"src_vlabel\":{},\"elabel\":{}}}",
            b.src_qvertex, b.src_vlabel, b.elabel
        ));
    }
    s.push(']');
    for (ci, name) in PROFILE_COUNTER_NAMES.iter().enumerate() {
        s.push_str(&format!(",\"{}\":{}", name, d.counters[ci]));
    }
    s.push_str(&format!(",\"cost\":{}", d.cost()));
    match d.observed_card() {
        Some(c) if c.is_finite() => s.push_str(&format!(",\"observed_card\":{c:.4}")),
        _ => s.push_str(",\"observed_card\":null"),
    }
    match d.estimate {
        Some(e) if e.is_finite() => s.push_str(&format!(",\"estimate\":{e:.4}")),
        _ => s.push_str(",\"estimate\":null"),
    }
    s.push('}');
}

fn push_order_json(s: &mut String, o: &OrderProfile) {
    s.push_str(&format!(
        "{{\"index\":{},\"seed\":[{},{}],\"elabel\":{},\"cost\":{},\"depths\":[",
        o.index,
        o.seed.0,
        o.seed.1,
        o.seed_elabel,
        o.cost()
    ));
    for (j, d) in o.depths.iter().enumerate() {
        if j > 0 {
            s.push(',');
        }
        push_depth_json(s, d);
    }
    s.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::MatchingOrders;
    use csm_graph::{ELabel, VLabel};

    fn path_profiler() -> Profiler {
        // u0 -a- u1 -b- u2, distinct labels so estimates are testable.
        let mut q = QueryGraph::new();
        let u: Vec<_> = (0..3).map(|i| q.add_vertex(VLabel(i))).collect();
        q.add_edge(u[0], u[1], ELabel(1)).unwrap();
        q.add_edge(u[1], u[2], ELabel(2)).unwrap();
        let orders = MatchingOrders::build(&q);
        Profiler::new(ProfileLevel::Counters, &q, &orders)
    }

    #[test]
    fn snapshot_reflects_flushed_frames_and_ranks_by_cost() {
        let p = path_profiler();
        let f = p.frame().unwrap();
        f.set_order(1);
        f.add(0, ProfileCounter::SliceWidth, 100);
        f.add(1, ProfileCounter::Extensions, 40);
        f.add(1, ProfileCounter::Invocations, 10);
        f.set_order(0);
        f.add(0, ProfileCounter::SliceWidth, 5);
        drop(f);

        let snap = p.snapshot().unwrap();
        assert_eq!(snap.level, ProfileLevel::Counters);
        assert_eq!(snap.orders.len(), 4);
        assert_eq!(snap.total_cost(), 145);
        let top = snap.top_order().unwrap();
        assert_eq!(top.index, 1);
        assert_eq!(top.cost(), 140);
        // Ranked is deterministic and descending.
        let ranked = snap.ranked();
        assert_eq!(ranked[0].index, 1);
        assert_eq!(ranked[1].index, 0);
        // Observed cardinality = extensions / invocations.
        let d1 = &snap.orders[1].depths[1];
        assert_eq!(d1.observed_card(), Some(4.0));
        assert_eq!(snap.orders[0].depths[0].observed_card(), None);
        // Totals reconcile with the per-depth grid.
        let t = snap.totals();
        assert_eq!(t[ProfileCounter::SliceWidth as usize], 105);
        assert_eq!(t[ProfileCounter::Extensions as usize], 40);
        assert_eq!(t[ProfileCounter::Invocations as usize], 10);
    }

    #[test]
    fn estimates_attach_via_closure() {
        let p = path_profiler();
        let mut snap = p.snapshot().unwrap();
        snap.apply_estimates(|d| {
            if d.backward.is_empty() {
                None
            } else {
                Some(d.backward.len() as f64 * 2.0)
            }
        });
        for o in &snap.orders {
            assert_eq!(o.depths[0].estimate, None);
            assert_eq!(o.depths[1].estimate, Some(2.0));
        }
    }

    #[test]
    fn json_exports_are_well_formed() {
        let p = path_profiler();
        let f = p.frame().unwrap();
        f.set_order(2);
        f.add(1, ProfileCounter::GallopSteps, 9);
        f.add(1, ProfileCounter::Invocations, 3);
        drop(f);
        let mut snap = p.snapshot().unwrap();
        snap.apply_estimates(|_| Some(1.5));

        let full = snap.to_json();
        assert!(full.starts_with("{\"level\":\"counters\""));
        assert!(full.contains("\"totals\":{\"slice_width\":0"));
        assert!(full.contains("\"gallop_steps\":9"));
        assert!(full.contains("\"estimate\":1.5000"));
        assert_eq!(
            full.matches("{\"index\":").count(),
            snap.orders.len(),
            "one object per order"
        );

        let explain = snap.explain_json();
        assert!(explain.contains("\"edges\":["));
        assert!(explain.contains("\"rank\":0,\"order\":2"));
        assert!(explain.contains("\"cost_share\":1.0000"));
        assert!(explain.contains("\"observed_card\":0.0000"));

        let mut prom = String::new();
        snap.prometheus_text(&mut prom);
        assert!(prom.contains("# TYPE paracosm_profile_gallop_steps counter"));
        assert!(prom.contains("paracosm_profile_gallop_steps{order=\"2\","));
        // Zero cells are suppressed.
        assert!(!prom.contains("} 0\n"));
    }
}
