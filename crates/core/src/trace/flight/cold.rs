//! Flight recorder cold paths: construction, snapshotting, span-path
//! extraction and the Perfetto exporter. Split out of
//! [`super`](crate::trace::flight) so the `flight-hot-path` lint rule
//! can deny allocation and `Instant`-construction in the record path
//! file outright.

use super::{unpack_meta, FanKind, FlightRecorder, FlightShard, FlightSlot, FlightStage, SpanId};
use csm_check::sync::atomic::{AtomicU64, Ordering};
use std::collections::BTreeMap;
use std::time::Instant;

/// Flight recorder sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightConfig {
    /// Slots per shard (events retained per ring; older events are
    /// overwritten).
    pub capacity: usize,
    /// Session shards (sessions hash onto these; one extra shard is
    /// always added for service-level stages).
    pub session_shards: usize,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            capacity: 1024,
            session_shards: 8,
        }
    }
}

impl FlightConfig {
    /// Default sizing with an explicit per-shard capacity.
    pub fn with_capacity(capacity: usize) -> FlightConfig {
        FlightConfig {
            capacity,
            ..FlightConfig::default()
        }
    }
}

/// One decoded flight event (a begin or end edge of a stage span).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Absolute per-shard write sequence of this event.
    pub seq: u64,
    /// Shard the event was recorded on.
    pub shard: usize,
    /// The owning update's span.
    pub span: SpanId,
    /// Pipeline stage.
    pub stage: FlightStage,
    /// `true` = span opened, `false` = span closed.
    pub begin: bool,
    /// Fan-out kind (meaningful for `fanout`/`flush` stages).
    pub kind: FanKind,
    /// Session id (0 for service-level stages).
    pub session: u32,
    /// Nanoseconds since recorder creation.
    pub ts_ns: u64,
    /// Stage-specific payload (queue depth, ΔM, flushed count, …).
    pub arg: u64,
}

/// A coherent copy of every shard's retained events, oldest first.
#[derive(Clone, Debug, Default)]
pub struct FlightSnapshot {
    /// Decoded events per shard, sequence-ascending.
    pub shards: Vec<Vec<FlightEvent>>,
    /// Events overwritten per shard before this snapshot.
    pub dropped: Vec<u64>,
}

impl FlightSnapshot {
    /// All events across shards, filtered to one span, timestamp-ascending.
    pub fn span_path(&self, span: SpanId) -> Vec<FlightEvent> {
        let mut path: Vec<FlightEvent> = self
            .shards
            .iter()
            .flatten()
            .filter(|e| e.span == span)
            .copied()
            .collect();
        path.sort_by_key(|e| (e.ts_ns, e.seq));
        path
    }

    /// Total retained events.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl FlightRecorder {
    /// A recorder with `cfg.session_shards + 1` single-writer rings of
    /// `cfg.capacity` slots each (capacities below 2 are clamped).
    pub fn new(cfg: FlightConfig) -> FlightRecorder {
        let cap = cfg.capacity.max(2);
        let shards = (0..cfg.session_shards.max(1) + 1)
            .map(|_| FlightShard {
                seq: AtomicU64::new(0),
                slots: (0..cap)
                    .map(|_| FlightSlot {
                        tag: AtomicU64::new(0),
                        span: AtomicU64::new(0),
                        meta: AtomicU64::new(0),
                        ts: AtomicU64::new(0),
                        arg: AtomicU64::new(0),
                    })
                    .collect(),
            })
            .collect();
        FlightRecorder {
            epoch: Instant::now(),
            next_span: AtomicU64::new(0),
            shards,
        }
    }

    /// Copy every shard's retained events, oldest first. Runs while
    /// writers are live: a slot whose tag changes mid-copy (or that was
    /// overwritten between cursor read and copy) is dropped whole, so
    /// the result never contains a torn event.
    pub fn snapshot(&self) -> FlightSnapshot {
        let mut out = FlightSnapshot::default();
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            let seq = shard.seq.load(Ordering::Acquire);
            let cap = shard.slots.len() as u64;
            let lo = seq.saturating_sub(cap);
            let mut evs = Vec::with_capacity((seq - lo) as usize);
            for i in lo..seq {
                let slot = &shard.slots[(i % cap) as usize];
                let t1 = slot.tag.load(Ordering::Acquire);
                if t1 != i + 1 {
                    continue; // mid-write, overwritten, or not yet visible
                }
                let span = slot.span.load(Ordering::Relaxed);
                let meta = slot.meta.load(Ordering::Relaxed);
                let ts = slot.ts.load(Ordering::Relaxed);
                let arg = slot.arg.load(Ordering::Relaxed);
                if slot.tag.load(Ordering::Acquire) != t1 {
                    continue; // overwritten mid-copy: drop the whole event
                }
                let Some((stage, begin, kind, session)) = unpack_meta(meta) else {
                    continue;
                };
                evs.push(FlightEvent {
                    seq: i,
                    shard: shard_idx,
                    span: SpanId(span),
                    stage,
                    begin,
                    kind,
                    session,
                    ts_ns: ts,
                    arg,
                });
            }
            out.dropped.push(lo);
            out.shards.push(evs);
        }
        out
    }

    /// Convenience: snapshot and extract one span's full path.
    pub fn span_path(&self, span: SpanId) -> Vec<FlightEvent> {
        self.snapshot().span_path(span)
    }

    /// Chrome/Perfetto `trace_event` JSON of the retained events: one
    /// track (`tid`) per session (`session-N`) plus a `service` track
    /// for service-level stages. Begin/end pairs become complete
    /// (`"ph":"X"`) slices carrying the span id; an unpaired begin (its
    /// end not yet written, or overwritten) degrades to an instant
    /// event. Timestamps are microseconds since recorder creation.
    pub fn perfetto_json(&self) -> String {
        let snap = self.snapshot();
        let mut events: Vec<&FlightEvent> = snap.shards.iter().flatten().collect();
        events.sort_by_key(|e| (e.ts_ns, e.shard, e.seq));

        let track = |e: &FlightEvent| -> u64 {
            match e.stage {
                // Aggregate deferred fan-outs carry the sentinel session
                // and belong on the service track with the other
                // whole-update stages.
                FlightStage::Fanout | FlightStage::Flush
                    if e.session != super::SESSION_AGGREGATE =>
                {
                    1 + e.session as u64
                }
                _ => 0,
            }
        };
        let us = |ns: u64| format!("{}.{:03}", ns / 1000, ns % 1000);

        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, s: String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&s);
        };

        let mut tracks: Vec<u64> = events.iter().map(|e| track(e)).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for tid in &tracks {
            let name = if *tid == 0 {
                "service".to_string()
            } else {
                format!("session-{}", tid - 1)
            };
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
            );
        }

        // Pair begin/end per (track, span, stage); the fan kind is left out
        // of the key on purpose — the engine fan-out path opens with the
        // default kind and closes with the resolved one (hit/miss). Stages
        // do not self-nest within one span, so a single open slot suffices.
        let mut open: BTreeMap<(u64, u64, u8), (u64, u64)> = BTreeMap::new();
        for e in &events {
            let tid = track(e);
            let key = (tid, e.span.0, e.stage as u8);
            if e.begin {
                open.insert(key, (e.ts_ns, e.arg));
            } else if let Some((t0, arg0)) = open.remove(&key) {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\
                         \"dur\":{},\"args\":{{\"span\":{},\"kind\":\"{}\",\"session\":{},\
                         \"arg_begin\":{arg0},\"arg_end\":{}}}}}",
                        e.stage.name(),
                        us(t0),
                        us(e.ts_ns.saturating_sub(t0)),
                        e.span.0,
                        e.kind.name(),
                        e.session,
                        e.arg
                    ),
                );
            } else {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{}_end\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\
                         \"ts\":{},\"args\":{{\"span\":{},\"arg\":{}}}}}",
                        e.stage.name(),
                        us(e.ts_ns),
                        e.span.0,
                        e.arg
                    ),
                );
            }
        }
        // Still-open begins (in-flight or torn) surface as instants so a
        // stalled update's last stage is visible in the trace.
        for ((tid, span, stage), (ts, arg)) in open {
            // Decode through the one authoritative map so a new stage
            // can never silently alias another exporter's hardcoded arm.
            let stage = FlightStage::from_code(u64::from(stage)).unwrap_or(FlightStage::Flush);
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{}_open\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{},\"args\":{{\"span\":{span},\"arg\":{arg}}}}}",
                    stage.name(),
                    us(ts),
                ),
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_round_trip() {
        let f = FlightRecorder::new(FlightConfig {
            capacity: 8,
            session_shards: 2,
        });
        let span = f.begin_span();
        assert_eq!(span, SpanId(1));
        f.begin(0, span, FlightStage::Admit, 7);
        f.fan_begin(span, FanKind::SharedHit, 3, 0);
        f.fan_end(span, FanKind::SharedHit, 3, 42);
        f.end(0, span, FlightStage::Admit, 7);

        let snap = f.snapshot();
        assert_eq!(snap.shards.len(), 3);
        assert_eq!(snap.len(), 4);
        let path = snap.span_path(span);
        assert_eq!(path.len(), 4);
        assert_eq!(path[0].stage, FlightStage::Admit);
        assert!(path[0].begin);
        assert_eq!(path[1].stage, FlightStage::Fanout);
        assert_eq!(path[1].kind, FanKind::SharedHit);
        assert_eq!(path[1].session, 3);
        assert_eq!(path[2].arg, 42);
        assert!(!path[3].begin);
        // Timestamps are monotone within the path (single writer).
        assert!(path.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn ring_overwrites_oldest_and_reports_drops() {
        let f = FlightRecorder::new(FlightConfig {
            capacity: 4,
            session_shards: 1,
        });
        for i in 0..10u64 {
            let s = f.begin_span();
            f.begin(0, s, FlightStage::Apply, i);
        }
        let snap = f.snapshot();
        assert_eq!(snap.shards[0].len(), 4);
        assert_eq!(snap.dropped[0], 6);
        // The retained events are the newest four, sequence-ascending.
        let args: Vec<u64> = snap.shards[0].iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![6, 7, 8, 9]);
    }

    #[test]
    fn session_shards_partition_sessions() {
        let f = FlightRecorder::new(FlightConfig {
            capacity: 4,
            session_shards: 4,
        });
        for sid in 0..16u64 {
            let shard = f.session_shard(sid);
            assert!((1..=4).contains(&shard));
            assert_eq!(shard, f.session_shard(sid + 4 * 7));
        }
    }

    #[test]
    fn aggregate_deferred_records_one_pair_on_the_service_shard() {
        let f = FlightRecorder::new(FlightConfig {
            capacity: 8,
            session_shards: 2,
        });
        let span = f.begin_span();
        f.begin(0, span, FlightStage::Admit, 3);
        f.fan_aggregate(span, FanKind::Deferred, 0, 3); // zero sessions: no record
        f.fan_aggregate(span, FanKind::Deferred, 64, 3);
        f.end(0, span, FlightStage::Admit, 0);

        let snap = f.snapshot();
        assert_eq!(snap.shards[0].len(), 4, "one aggregate pair, no more");
        assert!(snap.shards[1..].iter().all(Vec::is_empty));
        let pair: Vec<&FlightEvent> = snap.shards[0]
            .iter()
            .filter(|e| e.stage == FlightStage::Fanout)
            .collect();
        assert_eq!(pair.len(), 2);
        assert!(pair[0].begin && !pair[1].begin);
        assert_eq!(
            pair[0].ts_ns, pair[1].ts_ns,
            "the pair shares one clock read"
        );
        assert_eq!(pair[0].arg, 3, "open arg is the update index");
        assert_eq!(pair[1].arg, 64, "close arg is the deferred count");
        assert!(pair
            .iter()
            .all(|e| e.kind == FanKind::Deferred
                && e.session == crate::trace::flight::SESSION_AGGREGATE));

        // The exporter keeps the aggregate on the service track.
        let json = f.perfetto_json();
        assert!(!json.contains("session-4294967295"));
        assert!(json.contains("\"kind\":\"deferred\""));
    }

    #[test]
    fn perfetto_export_pairs_and_balances() {
        let f = FlightRecorder::new(FlightConfig::default());
        let span = f.begin_span();
        f.begin(0, span, FlightStage::Admit, 0);
        f.begin(0, span, FlightStage::Apply, 0);
        f.end(0, span, FlightStage::Apply, 0);
        f.fan_begin(span, FanKind::Engine, 0, 0);
        f.fan_end(span, FanKind::Engine, 0, 5);
        // Admit left open deliberately: must surface as an instant.
        let json = f.perfetto_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"apply\""));
        assert!(json.contains("\"name\":\"fanout\""));
        assert!(json.contains("admit_open"));
        assert!(json.contains("session-0"));
        assert!(json.contains("\"service\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
