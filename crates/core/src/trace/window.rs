//! Rolling-window telemetry aggregation for live scraping.
//!
//! End-of-run artifacts (`RunReport`, `ServiceReport`) only exist after
//! shutdown; a long-lived serving process needs *windowed* quantiles and
//! rates while it runs. This module provides [`WindowRing`]: a fixed ring
//! of N epoch buckets (configurable width), each holding a log-bucketed
//! latency histogram, ΔM/verdict counters, and queue-depth gauges.
//!
//! The design mirrors the sharded [`MetricsRegistry`](crate::MetricsRegistry):
//!
//! * **hot path never locks** — the single writer (the engine's
//!   orchestrator thread) bumps relaxed atomics in the bucket addressed by
//!   the current epoch; rotating a bucket to a new epoch is a
//!   store-Release of its epoch tag after the counters are zeroed;
//! * **scrape side merges** — readers (the telemetry HTTP thread) walk
//!   all buckets, keep those whose tag falls inside the live window, and
//!   re-validate the tag after reading so a bucket recycled mid-read is
//!   (best-effort) dropped; residual tearing is bounded to one epoch of a
//!   single snapshot and never reaches the lifetime totals;
//! * **Off is one branch** — an engine without a configured window holds
//!   `None` and pays a single branch per update, exactly like
//!   `TraceLevel::Off`.
//!
//! Tag protocol: a bucket's `epoch` atomic holds `absolute_epoch + 1`
//! (`0` = never used). The writer invalidates (`0`), zeroes, then
//! publishes the new tag; the reader's double-check of the tag brackets
//! its reads. The counters themselves are relaxed: the Release/Acquire
//! edge on the tag is only used to *discard* torn buckets, never to order
//! counter values, so a stale read costs at most one epoch of telemetry.

use crate::inter::{Classified, SafeStage};
use crate::metrics::{bucket_of, bucket_value, LatencyHistogram, MAJORS, MINORS};
use crate::trace::UpdateObservation;
use csm_check::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency buckets per epoch (same resolution as [`LatencyHistogram`]).
const LAT_BUCKETS: usize = MAJORS * MINORS;

/// Shape of a [`WindowRing`]: how wide each epoch bucket is and how many
/// the ring holds. The covered window is `epoch_width × num_epochs`.
///
/// ```
/// use paracosm_core::WindowConfig;
/// use std::time::Duration;
/// let cfg = WindowConfig::default();
/// assert_eq!(cfg.epoch_width, Duration::from_secs(1));
/// assert_eq!(cfg.num_epochs, 60);
/// assert_eq!(cfg.span(), Duration::from_secs(60));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one epoch bucket (clamped to ≥ 1 ms at ring construction).
    pub epoch_width: Duration,
    /// Number of epoch buckets in the ring (clamped to ≥ 2).
    pub num_epochs: usize,
}

impl Default for WindowConfig {
    fn default() -> WindowConfig {
        WindowConfig {
            epoch_width: Duration::from_secs(1),
            num_epochs: 60,
        }
    }
}

impl WindowConfig {
    /// The total window the ring covers once warm.
    pub fn span(&self) -> Duration {
        self.epoch_width * self.num_epochs as u32
    }
}

/// Per-window counter slots (fixed, index-stable — exporters rely on the
/// order matching [`WINDOW_COUNTER_NAMES`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum WindowCounter {
    /// Observations delivered (one per stream update per session).
    Updates,
    /// Positive matches (ΔM appearing side).
    Positives,
    /// Negative matches (ΔM disappearing side).
    Negatives,
    /// Structural no-ops.
    Noops,
    /// Updates skipped by the degradation ladder (ΔM unknown).
    Skipped,
    /// Stage-1 label-safe verdicts.
    VerdictLabelSafe,
    /// Stage-2 degree-safe verdicts.
    VerdictDegreeSafe,
    /// Stage-3 ADS-safe verdicts.
    VerdictAdsSafe,
    /// Unsafe verdicts (full enumeration ran).
    VerdictUnsafe,
}

/// Number of [`WindowCounter`] slots.
pub const NUM_WINDOW_COUNTERS: usize = 9;

/// Stable exporter names, indexed by `WindowCounter as usize`.
pub const WINDOW_COUNTER_NAMES: [&str; NUM_WINDOW_COUNTERS] = [
    "updates",
    "delta_pos",
    "delta_neg",
    "noops",
    "skipped",
    "verdict_label_safe",
    "verdict_degree_safe",
    "verdict_ads_safe",
    "verdict_unsafe",
];

/// The window counter a classifier verdict increments.
fn verdict_slot(c: Classified) -> WindowCounter {
    match c {
        Classified::Safe(SafeStage::Label) => WindowCounter::VerdictLabelSafe,
        Classified::Safe(SafeStage::Degree) => WindowCounter::VerdictDegreeSafe,
        Classified::Safe(SafeStage::Ads) => WindowCounter::VerdictAdsSafe,
        Classified::Unsafe => WindowCounter::VerdictUnsafe,
    }
}

#[inline]
fn ld(a: &AtomicU64) -> u64 {
    a.load(Ordering::Relaxed)
}

#[inline]
fn st(a: &AtomicU64, v: u64) {
    a.store(v, Ordering::Relaxed)
}

#[inline]
fn add(a: &AtomicU64, v: u64) {
    a.fetch_add(v, Ordering::Relaxed);
}

/// One epoch's worth of telemetry. Cache-line padded like the registry's
/// shards so the writer's bucket never false-shares with a reader walking
/// its neighbours.
#[repr(align(128))]
struct EpochBucket {
    /// `absolute_epoch + 1`; `0` = unused or mid-rotation.
    // @protocol: seqlock-tag
    epoch: AtomicU64,
    counters: [AtomicU64; NUM_WINDOW_COUNTERS],
    lat: Box<[AtomicU64]>,
    depth_sum: AtomicU64,
    depth_max: AtomicU64,
    depth_samples: AtomicU64,
}

impl EpochBucket {
    fn new() -> EpochBucket {
        EpochBucket {
            epoch: AtomicU64::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            lat: (0..LAT_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            depth_sum: AtomicU64::new(0),
            depth_max: AtomicU64::new(0),
            depth_samples: AtomicU64::new(0),
        }
    }

    /// Zero every counter (writer-side, before republishing the tag).
    fn reset(&self) {
        for c in &self.counters {
            st(c, 0);
        }
        for c in self.lat.iter() {
            st(c, 0);
        }
        st(&self.depth_sum, 0);
        st(&self.depth_max, 0);
        st(&self.depth_samples, 0);
    }
}

/// Lifetime totals (never rotate out): the exact counters `/metrics`
/// `_total` series report and the shutdown `ServiceReport` reconciles
/// against.
struct Totals {
    counters: [AtomicU64; NUM_WINDOW_COUNTERS],
}

/// A rolling ring of epoch buckets. Single writer (the thread driving the
/// engine), any number of scrape-side readers.
pub struct WindowRing {
    cfg: WindowConfig,
    width_ns: u64,
    start: Instant,
    epochs: Vec<EpochBucket>,
    totals: Totals,
}

impl WindowRing {
    /// Build a ring; `epoch_width` is clamped to ≥ 1 ms and `num_epochs`
    /// to ≥ 2 (a one-bucket ring would be recycled under the reader
    /// constantly).
    pub fn new(cfg: WindowConfig) -> WindowRing {
        let cfg = WindowConfig {
            epoch_width: cfg.epoch_width.max(Duration::from_millis(1)),
            num_epochs: cfg.num_epochs.max(2),
        };
        WindowRing {
            cfg,
            width_ns: cfg.epoch_width.as_nanos().min(u64::MAX as u128) as u64,
            start: Instant::now(),
            epochs: (0..cfg.num_epochs).map(|_| EpochBucket::new()).collect(),
            totals: Totals {
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
            },
        }
    }

    /// The (sanitized) configuration the ring was built with.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Absolute epoch index of `now`.
    fn epoch_now(&self) -> u64 {
        (self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64) / self.width_ns
    }

    /// The bucket for the current epoch, rotated into place if the ring
    /// has moved on since it was last written. Writer-side only.
    fn bucket_now(&self) -> &EpochBucket {
        let e = self.epoch_now();
        let b = &self.epochs[(e % self.epochs.len() as u64) as usize];
        let tag = e + 1;
        if b.epoch.load(Ordering::Acquire) != tag {
            // Invalidate, zero, republish: readers between the two tag
            // stores see 0 and skip the bucket.
            b.epoch.store(0, Ordering::Release);
            b.reset();
            b.epoch.store(tag, Ordering::Release);
        }
        b
    }

    /// Bump one counter in the current epoch and the lifetime totals.
    #[inline]
    pub fn count(&self, c: WindowCounter, n: u64) {
        if n == 0 {
            return;
        }
        add(&self.bucket_now().counters[c as usize], n);
        add(&self.totals.counters[c as usize], n);
    }

    /// Record one per-update observation: counters, verdict mix, and (for
    /// non-zero latencies, matching `RunStats::latency` conventions) the
    /// windowed latency histogram.
    #[inline]
    pub fn record(&self, obs: &UpdateObservation) {
        let b = self.bucket_now();
        let bump = |slot: WindowCounter, n: u64| {
            if n > 0 {
                add(&b.counters[slot as usize], n);
                add(&self.totals.counters[slot as usize], n);
            }
        };
        bump(WindowCounter::Updates, 1);
        bump(WindowCounter::Positives, obs.positives);
        bump(WindowCounter::Negatives, obs.negatives);
        bump(WindowCounter::Noops, obs.noop as u64);
        bump(WindowCounter::Skipped, obs.skipped as u64);
        if let Some(v) = obs.verdict {
            bump(verdict_slot(v), 1);
        }
        if obs.latency > Duration::ZERO {
            let nanos = obs.latency.as_nanos().min(u64::MAX as u128) as u64;
            add(&b.lat[bucket_of(nanos)], 1);
        }
    }

    /// Record an instantaneous queue-depth sample into the current epoch
    /// (the serving layer samples once per processed update).
    #[inline]
    pub fn record_queue_depth(&self, depth: u64) {
        let b = self.bucket_now();
        add(&b.depth_sum, depth);
        add(&b.depth_samples, 1);
        // Single-writer max: a load/store pair is race-free here and keeps
        // the facade's atomic surface minimal.
        if depth > ld(&b.depth_max) {
            st(&b.depth_max, depth);
        }
    }

    /// Lifetime (since ring construction) value of one counter — exact,
    /// never rotates out.
    pub fn total(&self, c: WindowCounter) -> u64 {
        ld(&self.totals.counters[c as usize])
    }

    /// Merge every epoch bucket still inside the window into one
    /// [`WindowSnapshot`]. Buckets observed mid-recycle are dropped via
    /// tag re-validation (best-effort — see the module docs for the
    /// residual tearing bound).
    pub fn snapshot(&self) -> WindowSnapshot {
        let now_e = self.epoch_now();
        let lo = (now_e + 1).saturating_sub(self.epochs.len() as u64);
        let mut counters = [0u64; NUM_WINDOW_COUNTERS];
        let mut lat = [0u64; LAT_BUCKETS];
        let (mut depth_sum, mut depth_max, mut depth_samples) = (0u64, 0u64, 0u64);
        for b in &self.epochs {
            let t1 = b.epoch.load(Ordering::Acquire);
            if t1 == 0 || t1 - 1 < lo || t1 - 1 > now_e {
                continue;
            }
            let mut tmp_counters = [0u64; NUM_WINDOW_COUNTERS];
            for (dst, src) in tmp_counters.iter_mut().zip(b.counters.iter()) {
                *dst = ld(src);
            }
            let mut tmp_lat = [0u64; LAT_BUCKETS];
            for (dst, src) in tmp_lat.iter_mut().zip(b.lat.iter()) {
                *dst = ld(src);
            }
            let (ds, dm, dn) = (ld(&b.depth_sum), ld(&b.depth_max), ld(&b.depth_samples));
            if b.epoch.load(Ordering::Acquire) != t1 {
                continue; // recycled mid-read
            }
            for (dst, src) in counters.iter_mut().zip(tmp_counters.iter()) {
                *dst += src;
            }
            for (dst, src) in lat.iter_mut().zip(tmp_lat.iter()) {
                *dst += src;
            }
            depth_sum += ds;
            depth_samples += dn;
            depth_max = depth_max.max(dm);
        }
        let mut hist = LatencyHistogram::new();
        for (i, &n) in lat.iter().enumerate() {
            hist.add_bucketed(i, n);
        }
        WindowSnapshot {
            span: self.cfg.span().min(self.start.elapsed()),
            counters,
            latency: hist,
            depth_sum,
            depth_max,
            depth_samples,
        }
    }
}

/// A merged, point-in-time view of the ring's live window: counters,
/// latency quantiles, and queue-depth gauges over (at most) the last
/// `epoch_width × num_epochs`.
#[derive(Clone, Debug)]
pub struct WindowSnapshot {
    /// Wall-clock span the snapshot covers (shorter than the configured
    /// window until the ring warms up).
    pub span: Duration,
    /// Merged counter values, indexed by `WindowCounter as usize`.
    pub counters: [u64; NUM_WINDOW_COUNTERS],
    /// Merged latency histogram (bucket resolution; see
    /// [`LatencyHistogram`]).
    pub latency: LatencyHistogram,
    /// Sum of sampled queue depths in the window.
    pub depth_sum: u64,
    /// Maximum sampled queue depth in the window.
    pub depth_max: u64,
    /// Number of queue-depth samples in the window.
    pub depth_samples: u64,
}

impl WindowSnapshot {
    /// Windowed value of one counter.
    pub fn count(&self, c: WindowCounter) -> u64 {
        self.counters[c as usize]
    }

    /// Windowed per-second rate of one counter.
    pub fn rate(&self, c: WindowCounter) -> f64 {
        let secs = self.span.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.count(c) as f64 / secs
    }

    /// Windowed latency quantiles `[p50, p95, p99, p999]`.
    pub fn quantiles(&self) -> [Duration; 4] {
        [
            self.latency.percentile(50.0),
            self.latency.percentile(95.0),
            self.latency.percentile(99.0),
            self.latency.p999(),
        ]
    }

    /// Mean sampled queue depth in the window.
    pub fn depth_avg(&self) -> f64 {
        if self.depth_samples == 0 {
            return 0.0;
        }
        self.depth_sum as f64 / self.depth_samples as f64
    }
}

/// Shared handle type: the serving layer hands `Arc<WindowRing>`s to its
/// telemetry thread.
pub type SharedWindow = Arc<WindowRing>;

// `bucket_value` is re-used by exporters that label histogram series with
// their upper bounds.
/// Upper-bound (representative) nanosecond value of latency bucket `idx`,
/// as reported by [`LatencyHistogram::nonzero_buckets`].
pub fn latency_bucket_upper_ns(idx: usize) -> u64 {
    bucket_value(idx.min(LAT_BUCKETS - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(latency_us: u64, pos: u64, neg: u64) -> UpdateObservation {
        UpdateObservation {
            index: 0,
            verdict: Some(Classified::Unsafe),
            noop: false,
            latency: Duration::from_micros(latency_us),
            positives: pos,
            negatives: neg,
            skipped: false,
            span: crate::trace::flight::SpanId::NONE,
        }
    }

    #[test]
    fn counters_accumulate_within_one_epoch() {
        let ring = WindowRing::new(WindowConfig {
            epoch_width: Duration::from_secs(3600),
            num_epochs: 4,
        });
        for i in 0..10 {
            ring.record(&obs(100 + i, 2, 1));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.count(WindowCounter::Updates), 10);
        assert_eq!(snap.count(WindowCounter::Positives), 20);
        assert_eq!(snap.count(WindowCounter::Negatives), 10);
        assert_eq!(snap.count(WindowCounter::VerdictUnsafe), 10);
        assert_eq!(snap.latency.count(), 10);
        assert_eq!(ring.total(WindowCounter::Updates), 10);
        let [p50, p95, p99, p999] = snap.quantiles();
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
        assert!(p50 >= Duration::from_micros(90));
    }

    #[test]
    fn totals_survive_rotation_windows_do_not() {
        let ring = WindowRing::new(WindowConfig {
            epoch_width: Duration::from_millis(1),
            num_epochs: 2,
        });
        ring.record(&obs(50, 1, 0));
        // Sleep past the whole window so the epoch rotates out.
        std::thread::sleep(Duration::from_millis(10));
        ring.record_queue_depth(3); // forces rotation of the current slot
        let snap = ring.snapshot();
        assert_eq!(
            snap.count(WindowCounter::Updates),
            0,
            "rotated-out epoch still visible"
        );
        assert_eq!(ring.total(WindowCounter::Updates), 1, "totals are lifetime");
    }

    #[test]
    fn queue_depth_gauges_average_and_max() {
        let ring = WindowRing::new(WindowConfig {
            epoch_width: Duration::from_secs(3600),
            num_epochs: 2,
        });
        for d in [1u64, 2, 3, 10] {
            ring.record_queue_depth(d);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.depth_samples, 4);
        assert_eq!(snap.depth_max, 10);
        assert!((snap.depth_avg() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn config_is_sanitized() {
        let ring = WindowRing::new(WindowConfig {
            epoch_width: Duration::ZERO,
            num_epochs: 0,
        });
        assert!(ring.config().epoch_width >= Duration::from_millis(1));
        assert!(ring.config().num_epochs >= 2);
    }

    #[test]
    fn concurrent_scrapes_never_tear_or_panic() {
        let ring = Arc::new(WindowRing::new(WindowConfig {
            epoch_width: Duration::from_millis(1),
            num_epochs: 4,
        }));
        let r2 = Arc::clone(&ring);
        let reader = std::thread::spawn(move || {
            let mut last_total = 0u64;
            for _ in 0..2000 {
                let snap = r2.snapshot();
                // A windowed count can shrink (epochs rotate out) but the
                // lifetime total is monotone.
                let t = r2.total(WindowCounter::Updates);
                assert!(t >= last_total, "lifetime totals must be monotone");
                last_total = t;
                // Windowed counts are bounded by the (later-read, hence
                // larger) lifetime total.
                assert!(snap.count(WindowCounter::Updates) <= t);
            }
        });
        for i in 0..5000u64 {
            ring.record(&obs(10 + (i % 100), 1, 0));
        }
        reader.join().unwrap();
        assert_eq!(ring.total(WindowCounter::Updates), 5000);
    }
}
