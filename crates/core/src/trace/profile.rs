//! Query profiler — per-(order, depth) enumeration cost attribution
//! (hot path).
//!
//! `SearchStats` tells you *how much* enumeration happened; this module
//! tells you *where it went*: which oriented query edge's matching order
//! burned the nodes, at which order depth the candidate sets blew up,
//! whether the kernel galloped or probed, and where the cooperative
//! deadline fired. The attribution unit is `(seed order, depth)` — the
//! seed order index doubles as the identity of the oriented query edge
//! it is rooted at, so ranking orders by attributed cost *is* the
//! per-query-edge EXPLAIN.
//!
//! # Protocol (same discipline as [`super::LocalTrace`])
//!
//! Workers never touch shared state per search node. Each worker owns a
//! stack-resident [`ProfileFrame`]: a fixed `depth × counter` block of
//! plain [`Cell`]s plus the order index the block currently belongs to.
//! The kernel adds into the frame through `SearchCtx::profile`
//! (`Option<&ProfileFrame>` — the Off arm is the `None` branch and
//! nothing else). When a worker switches seed orders
//! ([`ProfileFrame::set_order`]) or finishes its run
//! ([`ProfileFrame::flush`], also invoked on drop), the block is folded
//! into the engine-wide [`ProfileShared`] grid with one relaxed
//! `fetch_add` per *nonzero* cell — at most `32 × 6` adds per order
//! switch, zero per node.
//!
//! Construction, snapshotting and the JSON/explain exporters live in
//! [`cold`]: the `profile-hot-path` lint rule (LINT.md) denies
//! allocation and `Instant`-construction patterns in this file, exactly
//! like `flight.rs`.

use crate::embedding::MAX_PATTERN_VERTICES;
use csm_check::sync::atomic::{AtomicU64, Ordering};
use std::cell::Cell;
use std::sync::Arc;

pub mod cold;

/// How much profiling the engine records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProfileLevel {
    /// No profiler is allocated; every instrumentation site reduces to
    /// one branch on an `Option` that is always `None`.
    #[default]
    Off,
    /// Per-(order, depth) frame counters are live.
    Counters,
    /// Counters plus the live cardinality catalog on the apply path
    /// (maintained by the serving layer; see `csm_graph::catalog`).
    Full,
}

impl ProfileLevel {
    /// Parse `off|counters|on` (CLI surface; `full` is accepted as an
    /// alias for `on`).
    pub fn parse(s: &str) -> Option<ProfileLevel> {
        match s {
            "off" => Some(ProfileLevel::Off),
            "counters" => Some(ProfileLevel::Counters),
            "on" | "full" => Some(ProfileLevel::Full),
            _ => None,
        }
    }

    /// Stable wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ProfileLevel::Off => "off",
            ProfileLevel::Counters => "counters",
            ProfileLevel::Full => "on",
        }
    }
}

/// Per-depth profile counter identifiers. The discriminant is the slot
/// index inside a frame block, so adding is a single indexed `Cell`
/// bump — no name lookup on the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum ProfileCounter {
    /// Total width of the driver candidate slices streamed at this
    /// depth (label-bucket length at depth 0, smallest backward slice
    /// otherwise).
    SliceWidth,
    /// Binary-search / adjacency probes of non-driver backward slices.
    ProbeSteps,
    /// Exponential-search steps taken by the galloping merge.
    GallopSteps,
    /// Candidates that survived every check and were handed to the
    /// continuation (extensions emitted).
    Extensions,
    /// Cooperative deadline fires attributed to this depth.
    DeadlineHits,
    /// `for_each_candidate` invocations at this depth.
    Invocations,
}

/// Number of per-depth profile counters (keep in sync with
/// [`ProfileCounter`]).
pub const NUM_PROFILE_COUNTERS: usize = 6;

/// Snapshot/exporter names, indexed by [`ProfileCounter`] discriminant.
pub const PROFILE_COUNTER_NAMES: [&str; NUM_PROFILE_COUNTERS] = [
    "slice_width",
    "probe_steps",
    "gallop_steps",
    "extensions",
    "deadline_hits",
    "invocations",
];

/// The [`ProfileCounter`] at a table index (inverse of the
/// discriminant-as-index encoding).
pub fn profile_counter_from_index(i: usize) -> ProfileCounter {
    use ProfileCounter::*;
    const ALL: [ProfileCounter; NUM_PROFILE_COUNTERS] = [
        SliceWidth,
        ProbeSteps,
        GallopSteps,
        Extensions,
        DeadlineHits,
        Invocations,
    ];
    ALL[i]
}

/// One backward constraint of an order position: `(source query vertex,
/// source vertex label, edge label)` — enough for a cardinality catalog
/// to estimate the expected candidate count without the query graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackwardMeta {
    /// Already-matched query vertex whose image constrains this depth.
    pub src_qvertex: u32,
    /// Vertex label of that source query vertex.
    pub src_vlabel: u32,
    /// Edge label of the backward query edge.
    pub elabel: u32,
}

/// Static metadata of one order depth (built offline in [`cold`]).
#[derive(Clone, Debug)]
pub struct DepthMeta {
    /// Query vertex matched at this depth.
    pub qvertex: u32,
    /// Its vertex label.
    pub vlabel: u32,
    /// Backward constraints of this depth.
    pub backward: Vec<BackwardMeta>,
}

/// Static metadata of one seed order: the oriented query edge it is
/// rooted at plus per-depth constraint structure.
#[derive(Clone, Debug)]
pub struct OrderMeta {
    /// Oriented seed edge `(u_a, u_b)` as query-vertex ids.
    pub seed: (u32, u32),
    /// Edge label of the seed edge.
    pub seed_elabel: u32,
    /// Per-depth metadata (`depths.len()` = order length).
    pub depths: Vec<DepthMeta>,
}

/// Sentinel "no order selected yet" value for a frame.
const NO_ORDER: u16 = u16::MAX;

/// The engine-wide attribution grid: one atomic cell per
/// `(order, depth, counter)`, plus the static order metadata needed to
/// render an EXPLAIN without re-deriving anything from the query.
/// Constructed in [`cold`]; written only through [`ProfileFrame`]
/// flushes (relaxed adds), read by snapshots at any time.
pub struct ProfileShared {
    level: ProfileLevel,
    orders: Vec<OrderMeta>,
    /// `orders.len() × MAX_PATTERN_VERTICES × NUM_PROFILE_COUNTERS`
    /// relaxed counters, row-major.
    cells: Box<[AtomicU64]>,
}

impl ProfileShared {
    /// The profiling level this grid was built for.
    #[inline]
    pub fn level(&self) -> ProfileLevel {
        self.level
    }

    /// Number of seed orders tracked.
    #[inline]
    pub fn num_orders(&self) -> usize {
        self.orders.len()
    }

    /// Static metadata of order `i`.
    #[inline]
    pub fn meta(&self, i: usize) -> &OrderMeta {
        &self.orders[i]
    }

    #[inline]
    fn slot(&self, order: usize, depth: usize, c: usize) -> &AtomicU64 {
        &self.cells[(order * MAX_PATTERN_VERTICES + depth) * NUM_PROFILE_COUNTERS + c]
    }

    /// Fold `n` into one grid cell (relaxed; frames are the only
    /// writers and every write is a commutative add).
    #[inline]
    pub fn add(&self, order: u16, depth: usize, c: ProfileCounter, n: u64) {
        if (order as usize) < self.orders.len() && depth < MAX_PATTERN_VERTICES {
            self.slot(order as usize, depth, c as usize)
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Read one grid cell.
    #[inline]
    pub fn get(&self, order: usize, depth: usize, c: ProfileCounter) -> u64 {
        self.slot(order, depth, c as usize).load(Ordering::Relaxed)
    }
}

/// Handle to one engine's profiler. Cheap to clone (an `Arc`); `Off`
/// holds nothing and [`Profiler::frame`] returns `None`, so disabled
/// runs never even zero a frame block.
#[derive(Clone, Default)]
pub struct Profiler {
    shared: Option<Arc<ProfileShared>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("level", &self.level())
            .finish()
    }
}

impl Profiler {
    /// The disabled profiler.
    pub fn off() -> Profiler {
        Profiler { shared: None }
    }

    /// The active level.
    pub fn level(&self) -> ProfileLevel {
        self.shared.as_ref().map_or(ProfileLevel::Off, |s| s.level)
    }

    /// Is the profiler live?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The shared attribution grid, when live (snapshot/export surface).
    pub fn shared(&self) -> Option<&Arc<ProfileShared>> {
        self.shared.as_ref()
    }

    /// A worker-local frame, or `None` when profiling is off. The frame
    /// flushes itself on drop, so callers only need [`ProfileFrame::
    /// set_order`] at task boundaries.
    #[inline]
    pub fn frame(&self) -> Option<ProfileFrame> {
        self.shared.as_ref().map(|s| ProfileFrame {
            shared: Arc::clone(s),
            cur_order: Cell::new(NO_ORDER),
            cells: std::array::from_fn(|_| std::array::from_fn(|_| Cell::new(0))),
        })
    }
}

/// One worker's stack-resident attribution block: plain `Cell`
/// counters for the seed order currently being enumerated. Created via
/// [`Profiler::frame`] (only when profiling is on, so `add` needs no
/// guard of its own — the single Off branch lives at the
/// `SearchCtx::profile` call sites).
pub struct ProfileFrame {
    shared: Arc<ProfileShared>,
    cur_order: Cell<u16>,
    cells: [[Cell<u64>; NUM_PROFILE_COUNTERS]; MAX_PATTERN_VERTICES],
}

impl ProfileFrame {
    /// Switch the frame to `order`, folding the previous order's block
    /// into the shared grid first. Idempotent for repeated tasks on the
    /// same order — the common case under task batching — where it is
    /// a single compare.
    #[inline]
    pub fn set_order(&self, order: u16) {
        if self.cur_order.get() != order {
            self.flush();
            self.cur_order.set(order);
        }
    }

    /// Add `n` to one `(current order, depth)` counter. A `Cell`
    /// get/add/set — no atomics, no branches.
    #[inline]
    pub fn add(&self, depth: usize, c: ProfileCounter, n: u64) {
        let cell = &self.cells[depth][c as usize];
        cell.set(cell.get() + n);
    }

    /// Fold the current block into the shared grid (one relaxed add
    /// per nonzero cell) and zero it. Idempotent; also runs on drop.
    pub fn flush(&self) {
        let order = self.cur_order.get();
        if order == NO_ORDER {
            return;
        }
        for (d, row) in self.cells.iter().enumerate() {
            for (ci, cell) in row.iter().enumerate() {
                let v = cell.take();
                if v != 0 {
                    self.shared
                        .slot(order as usize, d, ci)
                        .fetch_add(v, Ordering::Relaxed);
                }
            }
        }
    }
}

impl Drop for ProfileFrame {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::MatchingOrders;
    use csm_graph::{ELabel, QueryGraph, VLabel};

    fn triangle_profiler(level: ProfileLevel) -> Profiler {
        let mut q = QueryGraph::new();
        let u: Vec<_> = (0..3).map(|i| q.add_vertex(VLabel(i))).collect();
        q.add_edge(u[0], u[1], ELabel(7)).unwrap();
        q.add_edge(u[1], u[2], ELabel(8)).unwrap();
        q.add_edge(u[0], u[2], ELabel(9)).unwrap();
        let orders = MatchingOrders::build(&q);
        Profiler::new(level, &q, &orders)
    }

    #[test]
    fn off_profiler_mints_no_frames() {
        let p = Profiler::off();
        assert!(!p.enabled());
        assert_eq!(p.level(), ProfileLevel::Off);
        assert!(p.frame().is_none());
        assert!(p.shared().is_none());
        // Off via the constructor too.
        let p2 = triangle_profiler(ProfileLevel::Off);
        assert!(!p2.enabled());
    }

    #[test]
    fn frame_attributes_to_the_current_order() {
        let p = triangle_profiler(ProfileLevel::Counters);
        let shared = p.shared().unwrap();
        assert_eq!(shared.num_orders(), 6);

        let f = p.frame().unwrap();
        f.set_order(2);
        f.add(0, ProfileCounter::SliceWidth, 10);
        f.add(1, ProfileCounter::Extensions, 3);
        // Nothing shared until an order switch or flush.
        assert_eq!(shared.get(2, 0, ProfileCounter::SliceWidth), 0);
        f.set_order(4);
        assert_eq!(shared.get(2, 0, ProfileCounter::SliceWidth), 10);
        assert_eq!(shared.get(2, 1, ProfileCounter::Extensions), 3);
        f.add(2, ProfileCounter::GallopSteps, 5);
        drop(f); // drop flushes the tail block
        assert_eq!(shared.get(4, 2, ProfileCounter::GallopSteps), 5);
        // The earlier block was not double-flushed.
        assert_eq!(shared.get(2, 1, ProfileCounter::Extensions), 3);
    }

    #[test]
    fn two_frames_merge_like_local_traces() {
        let p = triangle_profiler(ProfileLevel::Full);
        let a = p.frame().unwrap();
        let b = p.frame().unwrap();
        a.set_order(0);
        b.set_order(0);
        a.add(1, ProfileCounter::Invocations, 2);
        b.add(1, ProfileCounter::Invocations, 3);
        drop(a);
        drop(b);
        let s = p.shared().unwrap();
        assert_eq!(s.get(0, 1, ProfileCounter::Invocations), 5);
    }

    #[test]
    fn metadata_names_the_seed_edge_and_backward_structure() {
        let p = triangle_profiler(ProfileLevel::Counters);
        let s = p.shared().unwrap();
        for i in 0..s.num_orders() {
            let m = s.meta(i);
            assert_eq!(m.depths.len(), 3);
            // Depth 0/1 are the seed endpoints in order.
            assert_eq!(m.depths[0].qvertex, m.seed.0);
            assert_eq!(m.depths[1].qvertex, m.seed.1);
            // Depth 1 is constrained by the seed edge itself.
            assert_eq!(m.depths[1].backward.len(), 1);
            assert_eq!(m.depths[1].backward[0].src_qvertex, m.seed.0);
            assert_eq!(m.depths[1].backward[0].elabel, m.seed_elabel);
            // The triangle's last vertex is doubly constrained.
            assert_eq!(m.depths[2].backward.len(), 2);
        }
    }

    #[test]
    fn level_parse_round_trips() {
        assert_eq!(ProfileLevel::parse("off"), Some(ProfileLevel::Off));
        assert_eq!(
            ProfileLevel::parse("counters"),
            Some(ProfileLevel::Counters)
        );
        assert_eq!(ProfileLevel::parse("on"), Some(ProfileLevel::Full));
        assert_eq!(ProfileLevel::parse("full"), Some(ProfileLevel::Full));
        assert_eq!(ProfileLevel::parse("bogus"), None);
        assert_eq!(ProfileLevel::Full.name(), "on");
    }
}
