//! Flight recorder — the always-on causal span layer (hot path).
//!
//! Every admitted update in the serving layer gets a [`SpanId`] and a
//! trail of typed stage spans (`admit`, `apply`, `classify`,
//! `shared_probe`, `fanout`, `flush`) recorded as begin/end event pairs
//! into fixed-capacity per-shard rings. Unlike the opt-in
//! [`super::EventRing`] (gated on `TraceLevel::Full`, mutex-guarded),
//! the flight ring is meant to be left on in production `serve`: the
//! record path is allocation-free, lock-free, and writes a handful of
//! atomic words per event (see the `flight_record_hot_path` micro-bench
//! row in EXPERIMENTS.md).
//!
//! # Protocol
//!
//! Each shard is a single-writer ring of [`FlightSlot`]s guarded by the
//! same seqlock-lite epoch-tag discipline as
//! [`super::window::WindowRing`]: the writer publishes a slot by storing
//! tag `0` (mid-write marker, `Release`), the payload words (`Relaxed`),
//! then the slot's absolute sequence + 1 (`Release`). Readers
//! (in [`cold`]) `Acquire`-load the tag, copy the payload, and re-load
//! the tag — a changed or zero tag means the slot was overwritten
//! mid-copy and is dropped. Tearing is therefore bounded to whole
//! events: a snapshot never observes half an event, only a missing one.
//!
//! Shard 0 carries service-level stages; sessions hash onto shards
//! `1..` ([`FlightRecorder::session_shard`]) so per-session fan-out
//! recording from a single orchestrator thread keeps each shard
//! single-writer by construction. Multi-writer hosts must provide the
//! same guarantee per shard (as with `WindowRing`).
//!
//! Construction, snapshotting and export are deliberately *not* in this
//! file: the `flight-hot-path` lint rule (LINT.md) denies allocation
//! and `Instant`-construction patterns here, so everything cold lives
//! in the [`cold`] submodule.

use csm_check::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub mod cold;

/// Sentinel session id carried by aggregate fan-out events
/// ([`FlightRecorder::fan_aggregate`]): the event covers a *count* of
/// sessions (in `arg`), not any single one. Real session ids never
/// reach `u32::MAX` (the serving layer's id space is far smaller).
pub const SESSION_AGGREGATE: u32 = u32::MAX;

/// Identity of one admitted update's causal span: a monotonic `u64`
/// minted by [`FlightRecorder::begin_span`]. `SpanId(0)` is reserved to
/// mean "no span".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The reserved "no span" value.
    pub const NONE: SpanId = SpanId(0);

    /// Is this a real span (non-zero)?
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// Typed pipeline stage of a flight span event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightStage {
    /// Whole-update umbrella: begins when the update is popped from the
    /// admission queue (arg = update index), ends when every session has
    /// been fanned out.
    Admit,
    /// Applying the update to the shared data graph.
    Apply,
    /// Per-session classifier staging (the serving layer's stage-1..3
    /// verdict computation).
    Classify,
    /// Shared-index union probe + subscriber-set computation
    /// (arg on end = subscriber count).
    SharedProbe,
    /// One session's share of the fan-out (kind says how the session
    /// got its ΔM; arg on end = ΔM when known).
    Fanout,
    /// Folding a session's deferred label-safe bookkeeping back into
    /// its engine (arg = updates flushed).
    Flush,
}

impl FlightStage {
    /// Stable wire/export name.
    pub fn name(self) -> &'static str {
        match self {
            FlightStage::Admit => "admit",
            FlightStage::Apply => "apply",
            FlightStage::Classify => "classify",
            FlightStage::SharedProbe => "shared_probe",
            FlightStage::Fanout => "fanout",
            FlightStage::Flush => "flush",
        }
    }

    #[inline]
    fn code(self) -> u64 {
        self as u64
    }

    fn from_code(c: u64) -> Option<FlightStage> {
        match c {
            0 => Some(FlightStage::Admit),
            1 => Some(FlightStage::Apply),
            2 => Some(FlightStage::Classify),
            3 => Some(FlightStage::SharedProbe),
            4 => Some(FlightStage::Fanout),
            5 => Some(FlightStage::Flush),
            _ => None,
        }
    }
}

/// How a `fanout` span's session obtained its ΔM (ignored for other
/// stages).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum FanKind {
    /// The session's own engine enumerated (or classified) the update.
    #[default]
    Engine,
    /// The session absorbed a cached delta from the shared index.
    SharedHit,
    /// The session enumerated and published its delta for the group.
    SharedMiss,
    /// Label-safe deferred-bookkeeping fast path (no engine round-trip).
    Deferred,
}

impl FanKind {
    /// Stable wire/export name.
    pub fn name(self) -> &'static str {
        match self {
            FanKind::Engine => "engine",
            FanKind::SharedHit => "shared_hit",
            FanKind::SharedMiss => "shared_miss",
            FanKind::Deferred => "deferred",
        }
    }

    #[inline]
    fn code(self) -> u64 {
        self as u64
    }

    fn from_code(c: u64) -> FanKind {
        match c {
            1 => FanKind::SharedHit,
            2 => FanKind::SharedMiss,
            3 => FanKind::Deferred,
            _ => FanKind::Engine,
        }
    }
}

// Meta-word packing: stage in bits 0..8, begin flag in bit 8, fan kind
// in bits 16..24, session id in bits 32..64.
const META_BEGIN: u64 = 1 << 8;
const META_KIND_SHIFT: u64 = 16;
const META_SESSION_SHIFT: u64 = 32;

#[inline]
fn pack_meta(stage: FlightStage, begin: bool, kind: FanKind, session: u32) -> u64 {
    stage.code()
        | if begin { META_BEGIN } else { 0 }
        | (kind.code() << META_KIND_SHIFT)
        | ((session as u64) << META_SESSION_SHIFT)
}

#[inline]
fn unpack_meta(meta: u64) -> Option<(FlightStage, bool, FanKind, u32)> {
    let stage = FlightStage::from_code(meta & 0xff)?;
    let begin = meta & META_BEGIN != 0;
    let kind = FanKind::from_code((meta >> META_KIND_SHIFT) & 0xff);
    let session = (meta >> META_SESSION_SHIFT) as u32;
    Some((stage, begin, kind, session))
}

/// One ring slot: tag + four payload words. The tag holds the slot's
/// absolute write sequence + 1; `0` marks mid-write (and unused slots).
struct FlightSlot {
    // @protocol: seqlock-tag
    tag: AtomicU64,
    span: AtomicU64,
    meta: AtomicU64,
    ts: AtomicU64,
    arg: AtomicU64,
}

/// One single-writer ring. Cache-line-aligned so neighboring shards'
/// write cursors never share a line.
#[repr(align(128))]
struct FlightShard {
    /// Events ever written to this shard (the next slot's sequence).
    // @protocol: seqlock-guard
    seq: AtomicU64,
    slots: Box<[FlightSlot]>,
}

impl FlightShard {
    /// Publish one event. Single-writer per shard: the caller must
    /// guarantee no concurrent `write` on the same shard.
    #[inline]
    fn write(&self, span: u64, meta: u64, ts: u64, arg: u64) {
        let seq = self.seq.load(Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        // Same rotation discipline as WindowRing::bucket_now: invalidate,
        // mutate relaxed, re-tag. Readers validate tag == seq + 1 before
        // and after copying, so they only ever drop whole events.
        slot.tag.store(0, Ordering::Release);
        slot.span.store(span, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.ts.store(ts, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.tag.store(seq + 1, Ordering::Release);
        self.seq.store(seq + 1, Ordering::Release);
    }
}

/// The always-on flight recorder: a span-id mint plus `1 + N` fixed
/// capacity single-writer event rings (shard 0 = service stages, shards
/// `1..` = session fan-out). Construct via
/// [`FlightRecorder::new`] (defined in [`cold`]); record with
/// [`FlightRecorder::begin`] / [`FlightRecorder::end`] /
/// [`FlightRecorder::fan_begin`] / [`FlightRecorder::fan_end`].
pub struct FlightRecorder {
    epoch: Instant,
    next_span: AtomicU64,
    shards: Box<[FlightShard]>,
}

impl FlightRecorder {
    /// Mint the next span id (monotonic, starts at 1).
    #[inline]
    pub fn begin_span(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Span ids minted so far.
    #[inline]
    pub fn spans_minted(&self) -> u64 {
        self.next_span.load(Ordering::Relaxed)
    }

    /// Nanoseconds since recorder creation — the recorder's only clock.
    /// Span-record paths read this instead of constructing instants.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Number of shards (1 service shard + N session shards).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard slot capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.shards[0].slots.len()
    }

    /// The shard a session's fan-out events are recorded on. Sessions
    /// hash onto shards `1..`, keeping shard 0 for service stages.
    #[inline]
    pub fn session_shard(&self, session: u64) -> usize {
        1 + (session as usize % (self.shards.len() - 1))
    }

    /// Record one raw event with an explicit timestamp. Single-writer
    /// per shard (out-of-range shards clamp to the last). The arity is
    /// the event's full payload, deliberately flat: this is the raw
    /// primitive the typed helpers below wrap.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        shard: usize,
        span: SpanId,
        stage: FlightStage,
        begin: bool,
        kind: FanKind,
        session: u32,
        ts_ns: u64,
        arg: u64,
    ) {
        let idx = shard.min(self.shards.len() - 1);
        self.shards[idx].write(span.0, pack_meta(stage, begin, kind, session), ts_ns, arg);
    }

    /// Open a service-level stage span on `shard` at the current time.
    #[inline]
    pub fn begin(&self, shard: usize, span: SpanId, stage: FlightStage, arg: u64) {
        self.record(
            shard,
            span,
            stage,
            true,
            FanKind::Engine,
            0,
            self.now_ns(),
            arg,
        );
    }

    /// Close a service-level stage span on `shard` at the current time.
    #[inline]
    pub fn end(&self, shard: usize, span: SpanId, stage: FlightStage, arg: u64) {
        self.record(
            shard,
            span,
            stage,
            false,
            FanKind::Engine,
            0,
            self.now_ns(),
            arg,
        );
    }

    /// Open a `fanout` span for `session` (recorded on its shard).
    #[inline]
    pub fn fan_begin(&self, span: SpanId, kind: FanKind, session: u32, arg: u64) {
        let shard = self.session_shard(session as u64);
        self.record(
            shard,
            span,
            FlightStage::Fanout,
            true,
            kind,
            session,
            self.now_ns(),
            arg,
        );
    }

    /// Close a `fanout` span for `session`.
    #[inline]
    pub fn fan_end(&self, span: SpanId, kind: FanKind, session: u32, arg: u64) {
        let shard = self.session_shard(session as u64);
        self.record(
            shard,
            span,
            FlightStage::Fanout,
            false,
            kind,
            session,
            self.now_ns(),
            arg,
        );
    }

    /// Record one update's label-safe fan-out as a single aggregate
    /// begin/end pair on the service shard: `count` sessions took a
    /// label-safe path while deferring their bookkeeping — no rolling
    /// window or tracer consumes their per-update state, so there is
    /// nothing per-session to attribute. Metering those sessions
    /// individually would reintroduce exactly the per-session cost the
    /// deferred fast path exists to avoid (DESIGN.md §3.11), so the
    /// pair shares one clock read and carries [`SESSION_AGGREGATE`] as
    /// its session id; the close's `arg` is the aggregated session
    /// count, the open's is the update index. `kind` says how those
    /// sessions ran: [`FanKind::Deferred`] when the shared index let
    /// them skip the engine entirely, [`FanKind::Engine`] when each
    /// still folded the update into its engine. No-op when `count` is
    /// zero.
    #[inline]
    pub fn fan_aggregate(&self, span: SpanId, kind: FanKind, count: u64, idx: u64) {
        if count == 0 {
            return;
        }
        let ts = self.now_ns();
        self.record(
            0,
            span,
            FlightStage::Fanout,
            true,
            kind,
            SESSION_AGGREGATE,
            ts,
            idx,
        );
        self.record(
            0,
            span,
            FlightStage::Fanout,
            false,
            kind,
            SESSION_AGGREGATE,
            ts,
            count,
        );
    }

    /// Open/close a `flush` span for `session` in one call pair.
    #[inline]
    pub fn flush_begin(&self, span: SpanId, session: u32, arg: u64) {
        let shard = self.session_shard(session as u64);
        self.record(
            shard,
            span,
            FlightStage::Flush,
            true,
            FanKind::Deferred,
            session,
            self.now_ns(),
            arg,
        );
    }

    /// Close a `flush` span for `session` (arg = updates flushed).
    #[inline]
    pub fn flush_end(&self, span: SpanId, session: u32, arg: u64) {
        let shard = self.session_shard(session as u64);
        self.record(
            shard,
            span,
            FlightStage::Flush,
            false,
            FanKind::Deferred,
            session,
            self.now_ns(),
            arg,
        );
    }
}
