//! Matching orders (paper Algorithm 1, `Build_Match_Order`).
//!
//! For every *oriented* query edge `(u_a, u_b)` we precompute, offline, a
//! full matching order that starts with the two seed endpoints and then
//! greedily extends along the query's connectivity (most matched neighbors
//! first, then higher query degree — the classic "connected, selective
//! first" heuristic shared by TurboFlux/Symbi-style systems). For each
//! position we also precompute the *backward neighbors*: the already-matched
//! query neighbors whose data images constrain the candidate set, so the
//! online phase does zero order computation.

use crate::embedding::MAX_PATTERN_VERTICES;
use csm_graph::{ELabel, QVertexId, QueryGraph, VLabel};

/// A matching order rooted at one oriented seed edge (or, for the static
/// matcher, at a single start vertex).
#[derive(Clone, Debug)]
pub struct SeedOrder {
    /// `order[d]` is the query vertex matched at depth `d`.
    pub order: Vec<QVertexId>,
    /// `backward[d]` lists the `(already-matched neighbor, edge label)`
    /// pairs of `order[d]` — every data candidate at depth `d` must be
    /// adjacent (with the right edge label) to the images of all of them.
    pub backward: Vec<Vec<(QVertexId, ELabel)>>,
    /// `target_label[d]` = label of `order[d]`. Together with each backward
    /// edge's elabel this forms the exact partition key the kernel hands to
    /// `DataGraph::neighbors_with` at depth `d` — precomputed so candidate
    /// generation does zero query-side lookups per node.
    pub target_label: Vec<VLabel>,
    /// `target_degree[d]` = query degree of `order[d]` (the degree-prune
    /// threshold at depth `d`).
    pub target_degree: Vec<usize>,
    /// Position of each query vertex in `order`.
    pub pos: [u8; MAX_PATTERN_VERTICES],
}

impl SeedOrder {
    /// Build an order whose first `seeds.len()` positions are fixed.
    /// `seeds` must be non-empty and, for connected queries, the remaining
    /// order is guaranteed connected to the prefix.
    pub fn build(q: &QueryGraph, seeds: &[QVertexId]) -> SeedOrder {
        let n = q.num_vertices();
        debug_assert!(!seeds.is_empty() && seeds.len() <= n);
        let mut order: Vec<QVertexId> = seeds.to_vec();
        let mut in_order = 0u64;
        for &s in seeds {
            in_order |= 1 << s.index();
        }
        while order.len() < n {
            // Greedy: maximize (#matched neighbors, degree), prefer smaller id.
            let mut best: Option<(usize, usize, QVertexId)> = None;
            for u in q.vertices() {
                if in_order >> u.index() & 1 == 1 {
                    continue;
                }
                let matched_nbrs = (q.neighbor_mask(u) & in_order).count_ones() as usize;
                // Connected queries always have a positive-score pick once
                // the prefix is non-empty; disconnected ones fall back to
                // any remaining vertex (matched_nbrs = 0).
                let key = (matched_nbrs, q.degree(u));
                let better = match best {
                    None => true,
                    Some((mn, d, bu)) => key > (mn, d) || (key == (mn, d) && u < bu),
                };
                if better {
                    best = Some((key.0, key.1, u));
                }
            }
            let (_, _, u) = best.expect("unmatched vertex must exist");
            in_order |= 1 << u.index();
            order.push(u);
        }

        let mut pos = [u8::MAX; MAX_PATTERN_VERTICES];
        for (d, &u) in order.iter().enumerate() {
            pos[u.index()] = d as u8;
        }
        let backward = order
            .iter()
            .enumerate()
            .map(|(d, &u)| {
                q.neighbors(u)
                    .iter()
                    .filter(|&&(nb, _)| (pos[nb.index()] as usize) < d)
                    .map(|&(nb, l)| (nb, l))
                    .collect()
            })
            .collect();
        let target_label = order.iter().map(|&u| q.label(u)).collect();
        let target_degree = order.iter().map(|&u| q.degree(u)).collect();
        SeedOrder {
            order,
            backward,
            target_label,
            target_degree,
            pos,
        }
    }

    /// Number of query vertices (= full-match depth).
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True for the zero-vertex degenerate order.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// All matching orders of a query: one per oriented query edge, plus lookup.
#[derive(Clone, Debug)]
pub struct MatchingOrders {
    orders: Vec<SeedOrder>,
    /// `(u_a, u_b) → index into orders`, dense `n × n` table.
    index: Vec<u16>,
    n: usize,
}

impl MatchingOrders {
    /// Precompute orders for every oriented edge of `q` (offline stage).
    pub fn build(q: &QueryGraph) -> MatchingOrders {
        let n = q.num_vertices();
        let mut orders = Vec::with_capacity(q.num_edges() * 2);
        let mut index = vec![u16::MAX; n * n];
        for e in q.edges() {
            for (a, b) in [(e.u, e.v), (e.v, e.u)] {
                index[a.index() * n + b.index()] = orders.len() as u16;
                orders.push(SeedOrder::build(q, &[a, b]));
            }
        }
        MatchingOrders { orders, index, n }
    }

    /// The order seeded at the oriented query edge `(u_a, u_b)`.
    /// Panics if `{u_a, u_b}` is not a query edge.
    #[inline]
    pub fn for_seed(&self, ua: QVertexId, ub: QVertexId) -> &SeedOrder {
        let i = self.index[ua.index() * self.n + ub.index()];
        debug_assert!(i != u16::MAX, "({ua:?},{ub:?}) is not a query edge");
        &self.orders[i as usize]
    }

    /// Index of the order for `(u_a, u_b)` — used to ship compact task
    /// descriptors through the concurrent queue.
    #[inline]
    pub fn seed_index(&self, ua: QVertexId, ub: QVertexId) -> u16 {
        self.index[ua.index() * self.n + ub.index()]
    }

    /// The order at a previously obtained [`Self::seed_index`].
    #[inline]
    pub fn by_index(&self, i: u16) -> &SeedOrder {
        &self.orders[i as usize]
    }

    /// Number of oriented seed orders (`2 |E(Q)|`).
    pub fn len(&self) -> usize {
        self.orders.len()
    }

    /// True iff the query has no edges.
    pub fn is_empty(&self) -> bool {
        self.orders.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csm_graph::VLabel;

    /// Square with one diagonal: u0-u1, u1-u2, u2-u3, u3-u0, u0-u2.
    fn diamond() -> QueryGraph {
        let mut q = QueryGraph::new();
        let v: Vec<_> = (0..4).map(|i| q.add_vertex(VLabel(i))).collect();
        q.add_edge(v[0], v[1], ELabel(0)).unwrap();
        q.add_edge(v[1], v[2], ELabel(0)).unwrap();
        q.add_edge(v[2], v[3], ELabel(0)).unwrap();
        q.add_edge(v[3], v[0], ELabel(0)).unwrap();
        q.add_edge(v[0], v[2], ELabel(0)).unwrap();
        q
    }

    #[test]
    fn order_covers_all_vertices_connected() {
        let q = diamond();
        let o = SeedOrder::build(&q, &[QVertexId(3), QVertexId(0)]);
        assert_eq!(o.len(), 4);
        assert_eq!(o.order[0], QVertexId(3));
        assert_eq!(o.order[1], QVertexId(0));
        // Every later vertex has at least one backward neighbor.
        for d in 1..o.len() {
            assert!(!o.backward[d].is_empty(), "depth {d} disconnected");
        }
        // pos is the inverse of order.
        for (d, &u) in o.order.iter().enumerate() {
            assert_eq!(o.pos[u.index()] as usize, d);
        }
    }

    #[test]
    fn greedy_prefers_most_constrained() {
        let q = diamond();
        // Seeded at (u0, u1): u2 has two matched neighbors (u0, u1), u3 has
        // one (u0) — u2 must come first.
        let o = SeedOrder::build(&q, &[QVertexId(0), QVertexId(1)]);
        assert_eq!(o.order[2], QVertexId(2));
        assert_eq!(o.order[3], QVertexId(3));
        // u2's backward neighbors at depth 2 are both seeds.
        assert_eq!(o.backward[2].len(), 2);
    }

    #[test]
    fn matching_orders_cover_every_oriented_edge() {
        let q = diamond();
        let mo = MatchingOrders::build(&q);
        assert_eq!(mo.len(), 2 * q.num_edges());
        for e in q.edges() {
            for (a, b) in [(e.u, e.v), (e.v, e.u)] {
                let o = mo.for_seed(a, b);
                assert_eq!(o.order[0], a);
                assert_eq!(o.order[1], b);
                let i = mo.seed_index(a, b);
                assert_eq!(mo.by_index(i).order[0], a);
            }
        }
    }

    #[test]
    fn single_seed_order_for_static_matching() {
        let q = diamond();
        let o = SeedOrder::build(&q, &[QVertexId(2)]);
        assert_eq!(o.len(), 4);
        assert_eq!(o.order[0], QVertexId(2));
        assert!(o.backward[0].is_empty());
        for d in 1..4 {
            assert!(!o.backward[d].is_empty());
        }
    }
}
