//! The **inner-update executor** (paper §4.1, Algorithm 2).
//!
//! Within one graph update, the dynamic search tree is decomposed into
//! independent subtrees and explored by a pool of worker threads:
//!
//! * **Initialization phase** — the seed tasks (one per compatible oriented
//!   query edge) are expanded breadth-first until the concurrent queue holds
//!   at least `seed_task_factor × num_threads` subtrees;
//! * **Parallel execution phase** — workers pop subtrees and run the
//!   algorithm's own sequential enumeration on them; while above
//!   `SPLIT_DEPTH`, a worker that observes idle peers and an empty queue
//!   donates its children instead of recursing (adaptive task sharing —
//!   the load-balancing mechanism evaluated in paper Fig. 10).
//!
//! Synchronization is deliberately minimal (per the session's atomics
//! guide): one `crossbeam_deque::Injector` for tasks, one `AtomicUsize`
//! active-worker count for both idleness detection and termination, one
//! `AtomicBool` abort flag, and thread-local sinks merged after the scope
//! joins. The graph, query and ADS are shared immutably — the search phase
//! takes no locks.

use crate::algorithm::{AdsCandidates, CsmAlgorithm};
use crate::embedding::{BufferSink, Embedding, MatchSink};
use crate::kernel::{self, SearchCtx, SearchStats};
use crate::order::MatchingOrders;
use crate::trace::profile::{ProfileFrame, Profiler};
use crate::trace::{Counter, EventKind, LocalTrace, Tracer};
use crossbeam_deque::{Injector, Steal};
use crossbeam_utils::Backoff;
use csm_check::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use csm_graph::{GraphShard, QueryGraph};
use std::time::{Duration, Instant};

/// A search-tree subtree: a partial embedding plus the order it extends.
#[derive(Clone, Copy, Debug)]
pub struct SeedTask {
    /// Index into [`MatchingOrders`] identifying the seed order.
    pub order_idx: u16,
    /// Depth already matched (`emb.len()`).
    pub depth: u8,
    /// The partial embedding.
    pub emb: Embedding,
}

/// Executor tuning knobs (a projection of `ParaCosmConfig`).
#[derive(Clone, Copy, Debug)]
pub struct InnerConfig {
    /// Worker thread count (≥ 1).
    pub num_threads: usize,
    /// `SPLIT_DEPTH`: donation allowed strictly below this depth.
    pub split_depth: usize,
    /// Adaptive task sharing on/off (off = paper Fig. 10 "unbalanced").
    pub load_balance: bool,
    /// Initialization targets `seed_task_factor × num_threads` tasks.
    pub seed_task_factor: usize,
    /// Collect embeddings instead of counting.
    pub collect: bool,
    /// Global match cap across all workers.
    pub cap: Option<u64>,
    /// `false` selects the **coarse-grained baseline** (Mnemonic-style
    /// granularity, paper §1/§6): whole root subtrees are handed to threads
    /// with no BFS decomposition and no adaptive sharing. Kept for ablation
    /// — this is the load-imbalance strawman the fine-grained executor
    /// fixes (Challenge 1).
    pub decompose: bool,
}

impl InnerConfig {
    /// Fine-grained defaults matching `ParaCosmConfig::default()`.
    pub fn fine(num_threads: usize) -> Self {
        InnerConfig {
            num_threads,
            split_depth: 4,
            load_balance: true,
            seed_task_factor: 4,
            collect: false,
            cap: None,
            decompose: true,
        }
    }

    /// The coarse-grained (Mnemonic-granularity) baseline.
    pub fn coarse(num_threads: usize) -> Self {
        InnerConfig {
            load_balance: false,
            decompose: false,
            ..Self::fine(num_threads)
        }
    }
}

/// Result of one inner-update run.
#[derive(Debug, Default)]
pub struct InnerOutcome {
    /// Merged match results.
    pub sink: BufferSink,
    /// Summed search-tree nodes across workers.
    pub nodes: u64,
    /// Any worker hit the deadline.
    pub timed_out: bool,
    /// Busy time per worker thread (paper Fig. 10's per-thread execution
    /// time distribution).
    pub thread_busy: Vec<Duration>,
    /// Subtree tasks executed by workers.
    pub tasks_executed: u64,
    /// Donation events (tasks re-split onto the queue).
    pub tasks_split: u64,
    /// Deadline-fire transitions observed across init phase and workers.
    pub deadline_hits: u64,
}

/// Shared read-only state for one run.
struct RunCtx<'a, G: GraphShard> {
    g: &'a G,
    q: &'a QueryGraph,
    orders: &'a MatchingOrders,
    algo: &'a dyn CsmAlgorithm<G>,
    deadline: Option<Instant>,
    injector: Injector<SeedTask>,
    /// Workers not (yet) proven idle. Starts at `num_threads`; a worker
    /// decrements only after observing the queue empty and re-increments
    /// *before* stealing again, so `Empty && active == 0` can only be
    /// observed at quiescence — never while a stolen task is in flight.
    /// (The seed revision counted *executing* workers instead, opening an
    /// early-exit window between a peer's `Steal::Success` and its
    /// `fetch_add`; `csm-check`'s model tests keep that bug reproducible
    /// as `protocol::worker_buggy`.)
    active: AtomicUsize,
    aborted: AtomicBool,
    reported: AtomicU64,
    cfg: InnerConfig,
    profiler: &'a Profiler,
}

impl<'a, G: GraphShard> RunCtx<'a, G> {
    /// Build the per-task search context. `profile` is the calling
    /// worker's own frame (or `None`): the frame outlives the context but
    /// not the run, so the context's lifetime shrinks to the borrow.
    fn search_ctx<'b>(
        &'b self,
        order_idx: u16,
        profile: Option<&'b ProfileFrame>,
    ) -> SearchCtx<'b, G> {
        if let Some(p) = profile {
            p.set_order(order_idx);
        }
        SearchCtx {
            g: self.g,
            q: self.q,
            order: self.orders.by_index(order_idx),
            ignore_elabels: self.algo.ignore_edge_labels(),
            deadline: self.deadline,
            profile,
        }
    }

    /// Donation heuristic: does some worker currently look idle? Relaxed
    /// is deliberate — a stale answer only skews the donate-vs-recurse
    /// choice, never correctness (see LINT.md ordering allowlist).
    #[inline]
    fn has_idle_threads(&self) -> bool {
        self.active.load(Ordering::Relaxed) < self.cfg.num_threads
    }
}

/// Per-worker sink enforcing the *global* cap and abort flag.
struct WorkerSink<'a, G: GraphShard> {
    local: BufferSink,
    shared: &'a RunCtx<'a, G>,
}

impl<G: GraphShard> MatchSink for WorkerSink<'_, G> {
    #[inline]
    fn report(&mut self, emb: &Embedding, n: usize) -> bool {
        if self.shared.aborted.load(Ordering::Relaxed) {
            return false;
        }
        self.local.report(emb, n);
        if let Some(cap) = self.shared.cfg.cap {
            // Relaxed is sufficient for the cap: fetch_add is an atomic RMW,
            // so the count is exact regardless of ordering; `aborted` is an
            // advisory brake (workers may report a few extra matches past
            // the cap, which the sink's own cap field truncates), so no
            // happens-before edge is needed here either. See LINT.md.
            let total = self.shared.reported.fetch_add(1, Ordering::Relaxed) + 1;
            if total >= cap {
                self.shared.aborted.store(true, Ordering::Relaxed);
                return false;
            }
        }
        true
    }
}

/// Run the inner-update executor over the given seed tasks.
///
/// `seeds` are the root-level tasks of the update's search tree — one per
/// compatible oriented query edge, each a 2-vertex partial embedding (or a
/// deeper partial state when resuming). Completed embeddings among the
/// seeds are reported directly.
///
/// `tracer` records per-worker counters/events (shard 0 = this thread's
/// init phase, shard `w + 1` = worker `w`); pass [`Tracer::off`] for an
/// untraced run. Workers accumulate into [`LocalTrace`]s and merge once
/// before joining, so tracing adds no shared-state traffic to the search.
#[allow(clippy::too_many_arguments)]
pub fn run<G: GraphShard>(
    g: &G,
    q: &QueryGraph,
    orders: &MatchingOrders,
    algo: &dyn CsmAlgorithm<G>,
    deadline: Option<Instant>,
    seeds: Vec<SeedTask>,
    cfg: InnerConfig,
    tracer: &Tracer,
    profiler: &Profiler,
) -> InnerOutcome {
    let mut outcome = InnerOutcome {
        sink: if cfg.collect {
            BufferSink::collecting()
        } else {
            BufferSink::counting()
        },
        ..Default::default()
    };
    if seeds.is_empty() {
        return outcome;
    }
    outcome.sink.cap = cfg.cap;

    let ctx = RunCtx {
        g,
        q,
        orders,
        algo,
        deadline,
        injector: Injector::new(),
        active: AtomicUsize::new(cfg.num_threads),
        aborted: AtomicBool::new(false),
        reported: AtomicU64::new(0),
        cfg,
        profiler,
    };
    // One frame for everything this (the init/sequential) thread runs;
    // `None` when profiling is off. Flushes residue on drop.
    let init_frame = profiler.frame();

    // ---- Initialization phase (main thread): BFS-decompose until the queue
    // holds enough independent subtrees for the pool. The coarse baseline
    // (`decompose = false`) skips decomposition entirely.
    let target = if cfg.decompose {
        cfg.seed_task_factor.max(1) * cfg.num_threads.max(1)
    } else {
        0
    };
    let mut frontier: std::collections::VecDeque<SeedTask> = seeds.into();
    let mut init_stats = SearchStats::default();
    let mut init_trace = tracer.local(0);
    let mut expansions = 0usize;
    let expansion_budget = target * 8;
    while frontier.len() < target && expansions < expansion_budget {
        let Some(task) = frontier.pop_front() else {
            break;
        };
        expansions += 1;
        let sctx = ctx.search_ctx(task.order_idx, init_frame.as_ref());
        let n = sctx.order.len();
        if task.depth as usize == n {
            if !outcome.sink.report(&task.emb, n) {
                return finish_init(outcome, init_stats, init_trace, tracer);
            }
            continue;
        }
        let mut children = Vec::new();
        if !kernel::expand_one_layer(
            &sctx,
            &AdsCandidates(algo),
            &task.emb,
            task.depth as usize,
            &mut children,
            &mut init_stats,
        ) {
            outcome.timed_out = true;
            return finish_init(outcome, init_stats, init_trace, tracer);
        }
        init_trace.count(Counter::SeedExpansions, 1);
        init_trace.event(
            EventKind::SeedExpand,
            task.depth as u64,
            children.len() as u64,
        );
        for child in children {
            frontier.push_back(SeedTask {
                order_idx: task.order_idx,
                depth: task.depth + 1,
                emb: child,
            });
        }
    }
    if frontier.is_empty() {
        return finish_init(outcome, init_stats, init_trace, tracer);
    }

    // Sequential fast path: no pool to coordinate.
    if cfg.num_threads <= 1 {
        let local = if cfg.collect {
            BufferSink::collecting()
        } else {
            BufferSink::counting()
        };
        let mut sink = WorkerSink {
            local,
            shared: &ctx,
        };
        let mut stats = init_stats;
        for task in frontier {
            init_trace.count(Counter::TasksPopped, 1);
            init_trace.event(EventKind::TaskPop, task.order_idx as u64, task.depth as u64);
            let (n0, m0) = (stats.nodes, sink.local.count);
            let sctx = ctx.search_ctx(task.order_idx, init_frame.as_ref());
            let keep = run_task_sequential(&sctx, algo, task, &mut sink, &mut stats);
            init_trace.count(Counter::TasksCompleted, 1);
            init_trace.event(EventKind::TaskDone, stats.nodes - n0, sink.local.count - m0);
            if !keep {
                break;
            }
        }
        init_trace.count(Counter::Nodes, stats.nodes - init_stats.nodes);
        outcome.sink.absorb(sink.local);
        outcome.nodes += stats.nodes;
        outcome.timed_out |= stats.timed_out;
        outcome.deadline_hits += stats.deadline_hits;
        outcome.tasks_executed += 1;
        finish_trace(init_trace, &stats, tracer);
        return outcome;
    }

    for task in frontier {
        ctx.injector.push(task);
    }

    // ---- Parallel execution phase.
    let nthreads = cfg.num_threads;
    let mut locals: Vec<(BufferSink, SearchStats, Duration, u64, u64)> = Vec::new();
    let ctx_ref = &ctx;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nthreads)
            .map(|wid| scope.spawn(move || worker_loop(ctx_ref, wid, tracer)))
            .collect();
        for h in handles {
            locals.push(h.join().expect("inner-update worker panicked"));
        }
    });

    init_trace.count(Counter::Nodes, init_stats.nodes);
    tracer.merge(init_trace);
    outcome.nodes += init_stats.nodes;
    outcome.deadline_hits += init_stats.deadline_hits;
    for (sink, stats, busy, executed, split) in locals {
        outcome.sink.absorb(sink);
        outcome.nodes += stats.nodes;
        outcome.timed_out |= stats.timed_out;
        outcome.deadline_hits += stats.deadline_hits;
        outcome.thread_busy.push(busy);
        outcome.tasks_executed += executed;
        outcome.tasks_split += split;
    }
    outcome
}

fn finish_init(
    mut outcome: InnerOutcome,
    stats: SearchStats,
    mut lt: LocalTrace,
    tracer: &Tracer,
) -> InnerOutcome {
    lt.count(Counter::Nodes, stats.nodes);
    finish_trace(lt, &stats, tracer);
    outcome.nodes += stats.nodes;
    outcome.timed_out |= stats.timed_out;
    outcome.deadline_hits += stats.deadline_hits;
    outcome
}

/// Flush deadline-fire accounting into a local trace and merge it.
fn finish_trace(mut lt: LocalTrace, stats: &SearchStats, tracer: &Tracer) {
    if stats.deadline_hits > 0 {
        lt.count(Counter::DeadlineFires, stats.deadline_hits);
        lt.event(EventKind::DeadlineFired, stats.nodes, 0);
    }
    tracer.merge(lt);
}

fn worker_loop<G: GraphShard>(
    ctx: &RunCtx<'_, G>,
    wid: usize,
    tracer: &Tracer,
) -> (BufferSink, SearchStats, Duration, u64, u64) {
    let mut sink = WorkerSink {
        local: if ctx.cfg.collect {
            BufferSink::collecting()
        } else {
            BufferSink::counting()
        },
        shared: ctx,
    };
    let mut stats = SearchStats::default();
    let mut lt = tracer.local(wid + 1);
    // One frame per worker, merged into the shared grid on order switches
    // and on drop — the profiler's `LocalTrace` analogue.
    let frame = ctx.profiler.frame();
    let mut busy = Duration::ZERO;
    let mut executed = 0u64;
    let mut split = 0u64;
    let backoff = Backoff::new();
    'work: loop {
        match ctx.injector.steal() {
            Steal::Success(task) => {
                backoff.reset();
                let t0 = Instant::now();
                if !ctx.aborted.load(Ordering::Relaxed) {
                    executed += 1;
                    lt.count(Counter::TasksPopped, 1);
                    lt.event(EventKind::TaskPop, task.order_idx as u64, task.depth as u64);
                    let (n0, m0) = (stats.nodes, sink.local.count);
                    let sctx = ctx.search_ctx(task.order_idx, frame.as_ref());
                    parallel_find_matches(
                        ctx, &sctx, task, &mut sink, &mut stats, &mut split, &mut lt,
                    );
                    lt.count(Counter::TasksCompleted, 1);
                    lt.event(EventKind::TaskDone, stats.nodes - n0, sink.local.count - m0);
                    if stats.timed_out {
                        ctx.aborted.store(true, Ordering::Relaxed);
                    }
                }
                busy += t0.elapsed();
            }
            Steal::Retry => {
                lt.count(Counter::StealRetries, 1);
                lt.event(EventKind::StealRetry, 0, 0);
            }
            Steal::Empty => {
                // Deregister while demonstrably idle; re-register *before*
                // stealing again. A task is therefore never in flight
                // uncounted, and `Empty && active == 0` implies quiescence
                // — no worker can exit while work remains (checked under
                // seeded schedules by `csm-check`'s model tests).
                ctx.active.fetch_sub(1, Ordering::AcqRel);
                loop {
                    if !ctx.injector.is_empty() {
                        ctx.active.fetch_add(1, Ordering::AcqRel);
                        backoff.reset();
                        break;
                    }
                    if ctx.active.load(Ordering::Acquire) == 0 {
                        break 'work;
                    }
                    backoff.snooze();
                }
            }
        }
    }
    lt.count(Counter::Nodes, stats.nodes);
    finish_trace(lt, &stats, tracer);
    (sink.local, stats, busy, executed, split)
}

/// `Parallel_Find_Matches` from paper Algorithm 2: above `SPLIT_DEPTH`,
/// expand one layer at a time and donate children when idle peers are
/// observed with an empty queue; otherwise recurse. At or below
/// `SPLIT_DEPTH`, hand the subtree to the algorithm's own sequential search.
fn parallel_find_matches<G: GraphShard>(
    ctx: &RunCtx<'_, G>,
    sctx: &SearchCtx<'_, G>,
    task: SeedTask,
    sink: &mut WorkerSink<'_, G>,
    stats: &mut SearchStats,
    split: &mut u64,
    lt: &mut LocalTrace,
) {
    if ctx.aborted.load(Ordering::Relaxed) {
        return;
    }
    let n = sctx.order.len();
    let depth = task.depth as usize;
    if depth == n {
        sink.report(&task.emb, n);
        return;
    }
    let may_split = ctx.cfg.load_balance && depth < ctx.cfg.split_depth;
    if !may_split {
        let mut emb = task.emb;
        ctx.algo.search(sctx, &mut emb, depth, sink, stats);
        return;
    }
    let mut children = Vec::new();
    if !kernel::expand_one_layer(
        sctx,
        &AdsCandidates(ctx.algo),
        &task.emb,
        depth,
        &mut children,
        stats,
    ) {
        return;
    }
    let donate = ctx.injector.is_empty() && ctx.has_idle_threads();
    if donate {
        *split += 1;
        lt.count(Counter::TasksSplit, 1);
        lt.event(EventKind::Split, children.len() as u64, depth as u64);
        for child in children {
            ctx.injector.push(SeedTask {
                order_idx: task.order_idx,
                depth: task.depth + 1,
                emb: child,
            });
        }
    } else {
        for child in children {
            parallel_find_matches(
                ctx,
                sctx,
                SeedTask {
                    order_idx: task.order_idx,
                    depth: task.depth + 1,
                    emb: child,
                },
                sink,
                stats,
                split,
                lt,
            );
            if ctx.aborted.load(Ordering::Relaxed) {
                return;
            }
        }
    }
}

/// Outcome of a [`run_simulated`] virtual-scheduler run.
#[derive(Debug, Default)]
pub struct SimOutcome {
    /// Merged match results.
    pub sink: BufferSink,
    /// Total search-tree nodes.
    pub nodes: u64,
    /// Deadline fired during task execution.
    pub timed_out: bool,
    /// Total sequential work (sum of task durations + decomposition).
    pub work: Duration,
    /// Simulated parallel makespan (longest virtual-worker schedule).
    pub span: Duration,
    /// Simulated per-worker busy time (Fig. 10's distribution).
    pub worker_busy: Vec<Duration>,
    /// Number of subtree tasks scheduled.
    pub tasks: u64,
}

/// Virtual-scheduler counterpart of [`run`]: decompose the search tree with
/// the same policy as Algorithm 2, execute every subtree sequentially with
/// wall-clock timing, then **list-schedule** the measured durations onto
/// `cfg.num_threads` virtual workers (each task goes to the currently
/// least-loaded worker, in queue order — the steady-state behavior of the
/// work-stealing pool).
///
/// Motivation: thread-scaling experiments need more cores than a host may
/// have (the paper uses up to 128 threads on 80 cores). The virtual
/// scheduler preserves the real task sizes, queue order and splitting
/// policy, so speedup *shape* and load-balance distributions reproduce
/// deterministically on any machine. See DESIGN.md (substitutions).
#[allow(clippy::too_many_arguments)]
pub fn run_simulated<G: GraphShard>(
    g: &G,
    q: &QueryGraph,
    orders: &MatchingOrders,
    algo: &dyn CsmAlgorithm<G>,
    deadline: Option<Instant>,
    seeds: Vec<SeedTask>,
    cfg: InnerConfig,
    tracer: &Tracer,
    profiler: &Profiler,
) -> SimOutcome {
    let mut out = SimOutcome {
        sink: if cfg.collect {
            BufferSink::collecting()
        } else {
            BufferSink::counting()
        },
        ..Default::default()
    };
    out.sink.cap = cfg.cap;
    if seeds.is_empty() {
        return out;
    }
    let n_workers = cfg.num_threads.max(1);
    let decomp_start = Instant::now();
    let mut stats = SearchStats::default();
    let frame = profiler.frame();
    let ignore_elabels = algo.ignore_edge_labels();
    // A plain fn (not a closure) so the returned ctx's lifetime is tied to
    // the borrow arguments, letting the profile frame outlive each call.
    fn mk_ctx<'b, G: GraphShard>(
        g: &'b G,
        q: &'b QueryGraph,
        orders: &'b MatchingOrders,
        ignore_elabels: bool,
        deadline: Option<Instant>,
        order_idx: u16,
        profile: Option<&'b ProfileFrame>,
    ) -> SearchCtx<'b, G> {
        if let Some(p) = profile {
            p.set_order(order_idx);
        }
        SearchCtx {
            g,
            q,
            order: orders.by_index(order_idx),
            ignore_elabels,
            deadline,
            profile,
        }
    }

    // Phase 1 — BFS decomposition, exactly as the threaded initializer.
    // With load balancing on, refinement continues (down to SPLIT_DEPTH) to
    // the finer granularity adaptive splitting would reach; with it off,
    // only the initial coarse decomposition is kept (Fig. 10 "unbalanced").
    let coarse_target = cfg.seed_task_factor.max(1) * n_workers;
    let fine_target = if !cfg.decompose {
        0
    } else if cfg.load_balance {
        coarse_target.max(16 * n_workers)
    } else {
        coarse_target
    };
    let expansion_budget = fine_target * 8;
    let mut expansions = 0usize;
    let mut frontier: std::collections::VecDeque<SeedTask> = seeds.into();
    let mut ready: Vec<SeedTask> = Vec::new();
    while let Some(task) = frontier.pop_front() {
        let sctx = mk_ctx(
            g,
            q,
            orders,
            ignore_elabels,
            deadline,
            task.order_idx,
            frame.as_ref(),
        );
        let n = sctx.order.len();
        if task.depth as usize == n {
            if !out.sink.report(&task.emb, n) {
                break;
            }
            continue;
        }
        let deep_enough = task.depth as usize >= cfg.split_depth;
        let have_enough =
            ready.len() + frontier.len() + 1 >= fine_target || expansions >= expansion_budget;
        if deep_enough || have_enough {
            ready.push(task);
            continue;
        }
        expansions += 1;
        let mut children = Vec::new();
        if !kernel::expand_one_layer(
            &sctx,
            &AdsCandidates(algo),
            &task.emb,
            task.depth as usize,
            &mut children,
            &mut stats,
        ) {
            out.timed_out = true;
            break;
        }
        for c in children {
            frontier.push_back(SeedTask {
                order_idx: task.order_idx,
                depth: task.depth + 1,
                emb: c,
            });
        }
    }
    let decomp_time = decomp_start.elapsed();

    // Phase 2 — execute every subtree sequentially, timing each task.
    let mut durations: Vec<Duration> = Vec::with_capacity(ready.len());
    if !out.timed_out {
        for task in &ready {
            let sctx = mk_ctx(
                g,
                q,
                orders,
                ignore_elabels,
                deadline,
                task.order_idx,
                frame.as_ref(),
            );
            let n = sctx.order.len();
            let t0 = Instant::now();
            let keep = if task.depth as usize == n {
                out.sink.report(&task.emb, n)
            } else {
                let mut emb = task.emb;
                algo.search(
                    &sctx,
                    &mut emb,
                    task.depth as usize,
                    &mut out.sink,
                    &mut stats,
                )
            };
            durations.push(t0.elapsed());
            if stats.timed_out {
                out.timed_out = true;
                break;
            }
            if !keep {
                break;
            }
        }
    }
    out.nodes = stats.nodes;
    out.timed_out |= stats.timed_out;
    out.tasks = durations.len() as u64;
    out.work = decomp_time + durations.iter().sum::<Duration>();
    // Virtual workers share one real thread: everything lands on shard 0.
    let mut lt = tracer.local(0);
    lt.count(Counter::SeedExpansions, expansions as u64);
    lt.count(Counter::TasksPopped, out.tasks);
    lt.count(Counter::TasksCompleted, out.tasks);
    lt.count(Counter::Nodes, stats.nodes);
    finish_trace(lt, &stats, tracer);

    // Phase 3 — list-schedule measured durations onto virtual workers:
    // each task goes to the least-loaded worker, in queue order.
    let mut busy = vec![Duration::ZERO; n_workers];
    for d in &durations {
        let min = busy
            .iter()
            .enumerate()
            .min_by_key(|&(_, b)| *b)
            .map(|(i, _)| i)
            .expect("n_workers >= 1");
        busy[min] += *d;
    }
    out.span = decomp_time + busy.iter().max().copied().unwrap_or_default();
    out.worker_busy = busy;
    out
}

fn run_task_sequential<G: GraphShard>(
    sctx: &SearchCtx<'_, G>,
    algo: &dyn CsmAlgorithm<G>,
    task: SeedTask,
    sink: &mut WorkerSink<'_, G>,
    stats: &mut SearchStats,
) -> bool {
    let n = sctx.order.len();
    if task.depth as usize == n {
        return sink.report(&task.emb, n);
    }
    let mut emb = task.emb;
    algo.search(sctx, &mut emb, task.depth as usize, sink, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::AdsChange;
    use crate::static_match;
    use csm_graph::{DataGraph, ELabel, EdgeUpdate, QVertexId, VLabel, VertexId};

    /// A no-ADS algorithm for exercising the executor.
    struct Plain;
    impl CsmAlgorithm for Plain {
        fn name(&self) -> &'static str {
            "plain"
        }
        fn rebuild(&mut self, _: &DataGraph, _: &QueryGraph) {}
        fn update_ads(
            &mut self,
            _: &DataGraph,
            _: &QueryGraph,
            _: EdgeUpdate,
            _: bool,
        ) -> AdsChange {
            AdsChange::Unchanged
        }
        fn is_candidate(&self, _: &DataGraph, _: &QueryGraph, _: QVertexId, _: VertexId) -> bool {
            true
        }
    }

    /// Dense bipartite-ish graph where a triangle query fans out widely.
    fn big_graph() -> (DataGraph, QueryGraph) {
        let mut g = DataGraph::new();
        let n = 60;
        let vs: Vec<_> = (0..n).map(|_| g.add_vertex(VLabel(0))).collect();
        for i in 0..n {
            for j in i + 1..n {
                if (i + j) % 3 != 0 {
                    g.insert_edge(vs[i], vs[j], ELabel(0)).unwrap();
                }
            }
        }
        let mut q = QueryGraph::new();
        let u: Vec<_> = (0..4).map(|_| q.add_vertex(VLabel(0))).collect();
        q.add_edge(u[0], u[1], ELabel(0)).unwrap();
        q.add_edge(u[1], u[2], ELabel(0)).unwrap();
        q.add_edge(u[2], u[3], ELabel(0)).unwrap();
        q.add_edge(u[3], u[0], ELabel(0)).unwrap();
        (g, q)
    }

    fn seeds_for_edge(
        q: &QueryGraph,
        orders: &MatchingOrders,
        g: &DataGraph,
        a: VertexId,
        b: VertexId,
    ) -> Vec<SeedTask> {
        let el = g.edge_label(a, b).unwrap();
        q.seed_edges(g.label(a), g.label(b), el, false)
            .map(|(ua, ub)| {
                let mut emb = Embedding::empty();
                emb.set(ua, a);
                emb.set(ub, b);
                SeedTask {
                    order_idx: orders.seed_index(ua, ub),
                    depth: 2,
                    emb,
                }
            })
            .collect()
    }

    fn cfg(threads: usize) -> InnerConfig {
        InnerConfig {
            split_depth: 3,
            ..InnerConfig::fine(threads)
        }
    }

    /// Matches through one specific data edge, counted by brute force:
    /// total matches minus matches of the graph without the edge.
    fn oracle_through_edge(g: &mut DataGraph, q: &QueryGraph, a: VertexId, b: VertexId) -> u64 {
        let with = static_match::count_all(g, q);
        let l = g.remove_edge(a, b).unwrap().unwrap();
        let without = static_match::count_all(g, q);
        g.insert_edge(a, b, l).unwrap();
        with - without
    }

    #[test]
    fn parallel_count_matches_oracle_across_thread_counts() {
        let (mut g, q) = big_graph();
        let orders = MatchingOrders::build(&q);
        let (a, b) = (VertexId(0), VertexId(1));
        let expected = oracle_through_edge(&mut g, &q, a, b);
        assert!(
            expected > 0,
            "test graph must have matches through the edge"
        );
        for threads in [1, 2, 4, 8] {
            let seeds = seeds_for_edge(&q, &orders, &g, a, b);
            let out = run(
                &g,
                &q,
                &orders,
                &Plain,
                None,
                seeds,
                cfg(threads),
                &Tracer::off(),
                &Profiler::off(),
            );
            assert_eq!(out.sink.count, expected, "threads={threads}");
            assert!(!out.timed_out);
        }
    }

    #[test]
    fn load_balance_off_still_correct() {
        let (mut g, q) = big_graph();
        let orders = MatchingOrders::build(&q);
        let (a, b) = (VertexId(2), VertexId(3));
        let expected = oracle_through_edge(&mut g, &q, a, b);
        let seeds = seeds_for_edge(&q, &orders, &g, a, b);
        let mut c = cfg(4);
        c.load_balance = false;
        let out = run(
            &g,
            &q,
            &orders,
            &Plain,
            None,
            seeds,
            c,
            &Tracer::off(),
            &Profiler::off(),
        );
        assert_eq!(out.sink.count, expected);
    }

    #[test]
    fn empty_seeds_return_zero() {
        let (g, q) = big_graph();
        let orders = MatchingOrders::build(&q);
        let out = run(
            &g,
            &q,
            &orders,
            &Plain,
            None,
            Vec::new(),
            cfg(4),
            &Tracer::off(),
            &Profiler::off(),
        );
        assert_eq!(out.sink.count, 0);
        assert_eq!(out.nodes, 0);
    }

    #[test]
    fn cap_stops_enumeration_early() {
        let (g, q) = big_graph();
        let orders = MatchingOrders::build(&q);
        let seeds = seeds_for_edge(&q, &orders, &g, VertexId(0), VertexId(1));
        let mut c = cfg(4);
        c.cap = Some(10);
        let out = run(
            &g,
            &q,
            &orders,
            &Plain,
            None,
            seeds,
            c,
            &Tracer::off(),
            &Profiler::off(),
        );
        // Worker-local pre-abort reports can slightly exceed the cap, but
        // never by more than one per worker.
        assert!(out.sink.count >= 10 && out.sink.count <= 10 + 4);
    }

    #[test]
    fn expired_deadline_times_out() {
        let (g, q) = big_graph();
        let orders = MatchingOrders::build(&q);
        let seeds = seeds_for_edge(&q, &orders, &g, VertexId(0), VertexId(1));
        let past = Instant::now() - Duration::from_secs(1);
        let out = run(
            &g,
            &q,
            &orders,
            &Plain,
            Some(past),
            seeds,
            cfg(2),
            &Tracer::off(),
            &Profiler::off(),
        );
        assert!(out.timed_out);
    }

    #[test]
    fn collect_mode_materializes_valid_matches() {
        let (g, q) = big_graph();
        let orders = MatchingOrders::build(&q);
        let seeds = seeds_for_edge(&q, &orders, &g, VertexId(0), VertexId(1));
        let mut c = cfg(4);
        c.collect = true;
        let out = run(
            &g,
            &q,
            &orders,
            &Plain,
            None,
            seeds,
            c,
            &Tracer::off(),
            &Profiler::off(),
        );
        assert_eq!(out.sink.matches.len() as u64, out.sink.count);
        for m in &out.sink.matches {
            // Every match must be a genuine embedding containing the edge.
            for e in q.edges() {
                assert_eq!(
                    g.edge_label(m.get(e.u), m.get(e.v)),
                    Some(e.label),
                    "reported non-match {m:?}"
                );
            }
            let uses_edge = q.edges().iter().any(|e| {
                let (x, y) = (m.get(e.u), m.get(e.v));
                (x == VertexId(0) && y == VertexId(1)) || (x == VertexId(1) && y == VertexId(0))
            });
            assert!(uses_edge, "match does not use the updated edge: {m:?}");
        }
    }

    #[test]
    fn coarse_baseline_is_exact_but_undecomposed() {
        let (mut g, q) = big_graph();
        let orders = MatchingOrders::build(&q);
        let (a, b) = (VertexId(0), VertexId(1));
        let expected = oracle_through_edge(&mut g, &q, a, b);
        let seeds = seeds_for_edge(&q, &orders, &g, a, b);
        let n_seeds = seeds.len() as u64;
        let out = run(
            &g,
            &q,
            &orders,
            &Plain,
            None,
            seeds,
            InnerConfig::coarse(4),
            &Tracer::off(),
            &Profiler::off(),
        );
        assert_eq!(out.sink.count, expected);
        // No decomposition: exactly one task per seed, no donations.
        assert_eq!(out.tasks_executed, n_seeds);
        assert_eq!(out.tasks_split, 0);
    }

    #[test]
    fn simulated_coarse_schedules_seed_granularity() {
        let (g, q) = big_graph();
        let orders = MatchingOrders::build(&q);
        let seeds = seeds_for_edge(&q, &orders, &g, VertexId(0), VertexId(1));
        let n_seeds = seeds.len() as u64;
        let out = run_simulated(
            &g,
            &q,
            &orders,
            &Plain,
            None,
            seeds,
            InnerConfig::coarse(8),
            &Tracer::off(),
            &Profiler::off(),
        );
        assert_eq!(out.tasks, n_seeds);
    }

    #[test]
    fn simulated_count_matches_oracle_across_worker_counts() {
        let (mut g, q) = big_graph();
        let orders = MatchingOrders::build(&q);
        let (a, b) = (VertexId(0), VertexId(1));
        let expected = oracle_through_edge(&mut g, &q, a, b);
        for workers in [1, 2, 8, 32, 128] {
            let seeds = seeds_for_edge(&q, &orders, &g, a, b);
            let out = run_simulated(
                &g,
                &q,
                &orders,
                &Plain,
                None,
                seeds,
                cfg(workers),
                &Tracer::off(),
                &Profiler::off(),
            );
            assert_eq!(out.sink.count, expected, "workers={workers}");
            assert!(!out.timed_out);
            assert!(out.span <= out.work + Duration::from_millis(1));
            assert_eq!(out.worker_busy.len(), workers);
        }
    }

    #[test]
    fn simulated_span_shrinks_with_more_workers() {
        let (g, q) = big_graph();
        let orders = MatchingOrders::build(&q);
        let span_of = |workers: usize| {
            let seeds = seeds_for_edge(&q, &orders, &g, VertexId(0), VertexId(1));
            run_simulated(
                &g,
                &q,
                &orders,
                &Plain,
                None,
                seeds,
                cfg(workers),
                &Tracer::off(),
                &Profiler::off(),
            )
            .span
        };
        let s1 = span_of(1);
        let s16 = span_of(16);
        assert!(
            s16 < s1,
            "16 virtual workers should beat 1: s1={s1:?} s16={s16:?}"
        );
    }

    #[test]
    fn simulated_lb_off_uses_coarser_tasks() {
        let (g, q) = big_graph();
        let orders = MatchingOrders::build(&q);
        let tasks_of = |lb: bool| {
            let seeds = seeds_for_edge(&q, &orders, &g, VertexId(0), VertexId(1));
            let mut c = cfg(8);
            c.load_balance = lb;
            run_simulated(
                &g,
                &q,
                &orders,
                &Plain,
                None,
                seeds,
                c,
                &Tracer::off(),
                &Profiler::off(),
            )
            .tasks
        };
        assert!(tasks_of(true) > tasks_of(false));
    }

    #[test]
    fn thread_busy_times_recorded_per_worker() {
        let (g, q) = big_graph();
        let orders = MatchingOrders::build(&q);
        let seeds = seeds_for_edge(&q, &orders, &g, VertexId(0), VertexId(1));
        let out = run(
            &g,
            &q,
            &orders,
            &Plain,
            None,
            seeds,
            cfg(4),
            &Tracer::off(),
            &Profiler::off(),
        );
        assert_eq!(out.thread_busy.len(), 4);
        assert!(out.tasks_executed > 0);
    }
}
