//! Differential tests for the partition-index candidate generator: on
//! random workloads, [`kernel::for_each_candidate`] (exact-slice galloping
//! intersection / probe hybrid) must produce exactly the same candidate
//! *sets* at every search-tree node — and therefore the same match counts —
//! as the retained linear-scan reference [`kernel::for_each_candidate_naive`].

use csm_graph::QVertexId;
use paracosm::algos::testing;
use paracosm::core::kernel::{self, NoFilter, SearchCtx, SearchStats};
use paracosm::core::{static_match, BufferSink, Embedding, MatchSink, SeedOrder};
use proptest::prelude::*;

/// Walk the search tree rooted at (`emb`, `depth`), asserting at every node
/// that the two generators agree on the candidate set, and counting the full
/// matches found. Recursion follows the shared (sorted) candidate set, so a
/// divergence is caught at the *first* node where it appears.
fn walk_and_compare(ctx: &SearchCtx<'_>, emb: &mut Embedding, depth: usize) -> u64 {
    if depth == ctx.order.len() {
        return 1;
    }
    let mut fast = Vec::new();
    kernel::for_each_candidate(ctx, &NoFilter, *emb, depth, |v| {
        fast.push(v);
        true
    });
    let mut naive = Vec::new();
    kernel::for_each_candidate_naive(ctx, &NoFilter, *emb, depth, |v| {
        naive.push(v);
        true
    });
    fast.sort_unstable();
    naive.sort_unstable();
    assert_eq!(
        fast, naive,
        "candidate sets diverge at depth {depth} (ignore_elabels={}, emb={emb:?})",
        ctx.ignore_elabels
    );
    let u = ctx.order.order[depth];
    let mut count = 0;
    for v in fast {
        emb.set(u, v);
        count += walk_and_compare(ctx, emb, depth + 1);
        emb.unset(u);
    }
    count
}

/// Full-tree comparison for one workload/query pair, in both edge-label
/// modes, cross-checked against the static-match oracle.
fn check_workload(seed: u64, n: u32, vlabels: u32, elabels: u32, edges: usize, qsize: usize) {
    let (g, _) = testing::random_workload(seed, n, vlabels, elabels, edges, 0, 0.0);
    let Some(q) = testing::random_walk_query(&g, seed ^ 0x5EED, qsize) else {
        return;
    };
    let start = q
        .vertices()
        .max_by_key(|&u| q.degree(u))
        .expect("non-empty query");
    let order = SeedOrder::build(&q, &[start]);
    for ignore in [false, true] {
        let ctx = SearchCtx {
            g: &g,
            q: &q,
            order: &order,
            ignore_elabels: ignore,
            deadline: None,
            profile: None,
        };
        let matches = walk_and_compare(&ctx, &mut Embedding::empty(), 0);
        let oracle = if ignore {
            static_match::count_all_ignoring_elabels(&g, &q)
        } else {
            static_match::count_all(&g, &q)
        };
        assert_eq!(
            matches, oracle,
            "match count diverges from oracle (seed={seed}, ignore={ignore})"
        );
    }
}

#[test]
fn skewed_labels_agree_with_naive_reference() {
    // Few vertex labels over many vertices → big label buckets, long
    // partition slices, exercises the galloping-merge path.
    for seed in 0..12u64 {
        check_workload(seed, 36, 2, 2, 140, 4);
    }
}

#[test]
fn uniform_labels_agree_with_naive_reference() {
    // Many labels → tiny slices, exercises the probe fallback.
    for seed in 100..112u64 {
        check_workload(seed, 36, 6, 3, 120, 4);
    }
}

#[test]
fn single_elabel_agree_with_naive_reference() {
    // One edge label: exact mode degenerates close to CaLiG mode, both
    // paths must still agree node-for-node.
    for seed in 200..208u64 {
        check_workload(seed, 30, 3, 1, 110, 5);
    }
}

#[test]
fn seeded_two_vertex_orders_agree() {
    // Orders seeded on an edge (the CSM inner-update shape): both endpoints
    // pre-mapped, every deeper level has ≥1 backward edge.
    let (g, _) = testing::random_workload(77, 32, 3, 2, 120, 0, 0.0);
    let Some(q) = testing::random_walk_query(&g, 78, 4) else {
        return;
    };
    let e0 = q.edges().first().expect("query has an edge");
    let (u0, u1) = (e0.u, e0.v);
    let order = SeedOrder::build(&q, &[u0, u1]);
    for ignore in [false, true] {
        let ctx = SearchCtx {
            g: &g,
            q: &q,
            order: &order,
            ignore_elabels: ignore,
            deadline: None,
            profile: None,
        };
        // Try every label-compatible image of the seed edge.
        for (a, b, _) in g.edges() {
            for (x, y) in [(a, b), (b, a)] {
                if g.label(x) != q.label(u0) || g.label(y) != q.label(u1) {
                    continue;
                }
                let mut emb = Embedding::empty();
                emb.set(u0, x);
                emb.set(u1, y);
                walk_and_compare(&ctx, &mut emb, 2);
            }
        }
    }
}

/// The kernel's own `extend` (which routes through the new generator) must
/// count exactly what a naive-generator recursion counts.
fn naive_extend(ctx: &SearchCtx<'_>, emb: &mut Embedding, depth: usize, sink: &mut BufferSink) {
    if depth == ctx.order.len() {
        sink.report(emb, depth);
        return;
    }
    let u = ctx.order.order[depth];
    kernel::for_each_candidate_naive(ctx, &NoFilter, *emb, depth, |v| {
        emb.set(u, v);
        naive_extend(ctx, emb, depth + 1, sink);
        emb.unset(u);
        true
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Property form: arbitrary workload parameters, full-tree agreement.
    #[test]
    fn candidate_streams_agree_on_random_workloads(
        seed in any::<u64>(),
        n in 12u32..34,
        vlabels in 2u32..5,
        elabels in 1u32..4,
        edges in 30usize..110,
        qsize in 3usize..6,
    ) {
        check_workload(seed, n, vlabels, elabels, edges, qsize);
    }

    /// The production `extend` and a naive-generator recursion agree on
    /// total match counts.
    #[test]
    fn extend_matches_naive_recursion(
        seed in any::<u64>(),
        n in 12u32..30,
        vlabels in 2u32..5,
        edges in 30usize..100,
        qsize in 3usize..5,
    ) {
        let (g, _) = testing::random_workload(seed, n, vlabels, 2, edges, 0, 0.0);
        if let Some(q) = testing::random_walk_query(&g, seed ^ 0xD1FF, qsize) {
            let order = SeedOrder::build(&q, &[QVertexId(0)]);
            for ignore in [false, true] {
                let ctx = SearchCtx {
                    g: &g, q: &q, order: &order, ignore_elabels: ignore, deadline: None, profile: None,
                };
                let mut fast_sink = BufferSink::counting();
                let mut stats = SearchStats::default();
                kernel::extend(&ctx, &NoFilter, &mut Embedding::empty(), 0, &mut fast_sink, &mut stats);
                let mut naive_sink = BufferSink::counting();
                naive_extend(&ctx, &mut Embedding::empty(), 0, &mut naive_sink);
                prop_assert_eq!(fast_sink.count, naive_sink.count, "ignore={}", ignore);
            }
        }
    }
}
