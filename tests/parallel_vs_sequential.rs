//! Parallel configurations must be result-equivalent to the sequential
//! baseline: real threads (inner executor), virtual workers (simulated
//! scheduler), batch executor, and every tuning knob in between.

use paracosm::algos::{testing, AlgoKind};
use paracosm::core::ParaCosmConfig;

fn workload() -> (
    csm_graph::DataGraph,
    csm_graph::UpdateStream,
    csm_graph::QueryGraph,
) {
    let (g, stream) = testing::random_workload(31, 45, 3, 1, 110, 60, 0.25);
    let q = testing::random_walk_query(&g, 32, 5).expect("query");
    (g, stream, q)
}

#[test]
fn real_threads_match_sequential_per_update() {
    let (g, stream, q) = workload();
    for kind in AlgoKind::ALL {
        let mut cfg = ParaCosmConfig::parallel(4);
        cfg.inter_update = false;
        testing::check_stream(&g, &q, &stream, kind, cfg);
    }
}

#[test]
fn simulated_workers_match_sequential_per_update() {
    let (g, stream, q) = workload();
    for kind in [AlgoKind::GraphFlow, AlgoKind::Symbi, AlgoKind::CaLiG] {
        let mut cfg = ParaCosmConfig::simulated(32);
        cfg.inter_update = false;
        testing::check_stream(&g, &q, &stream, kind, cfg);
    }
}

#[test]
fn batch_executor_matches_sequential_totals() {
    let (g, stream, q) = workload();
    for kind in AlgoKind::ALL {
        for batch in [1, 3, 17, 4096] {
            let cfg = ParaCosmConfig::parallel(4).with_batch_size(batch);
            testing::check_stream_totals(&g, &q, &stream, kind, cfg);
        }
    }
}

#[test]
fn load_balance_off_is_still_exact() {
    let (g, stream, q) = workload();
    let mut cfg = ParaCosmConfig::parallel(4);
    cfg.load_balance = false;
    testing::check_stream_totals(&g, &q, &stream, AlgoKind::TurboFlux, cfg);
}

#[test]
fn split_depth_extremes_are_exact() {
    let (g, stream, q) = workload();
    for split_depth in [0, 1, 16] {
        let mut cfg = ParaCosmConfig::parallel(3);
        cfg.split_depth = split_depth;
        cfg.inter_update = false;
        testing::check_stream_totals(&g, &q, &stream, AlgoKind::NewSP, cfg);
    }
}

#[test]
fn seed_task_factor_extremes_are_exact() {
    let (g, stream, q) = workload();
    for factor in [1, 64] {
        let mut cfg = ParaCosmConfig::parallel(2);
        cfg.seed_task_factor = factor;
        cfg.inter_update = false;
        testing::check_stream_totals(&g, &q, &stream, AlgoKind::GraphFlow, cfg);
    }
}

#[test]
fn high_thread_counts_are_exact_on_small_work() {
    // More threads than tasks: termination and counting must still hold.
    let (g, stream) = testing::random_workload(41, 20, 2, 1, 30, 20, 0.0);
    let q = testing::random_walk_query(&g, 42, 3).expect("query");
    let mut cfg = ParaCosmConfig::parallel(16);
    cfg.inter_update = false;
    testing::check_stream(&g, &q, &stream, AlgoKind::Symbi, cfg);
}
