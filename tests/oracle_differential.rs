//! Differential tests against brute-force recomputation, covering the full
//! update model: edge insertions/deletions, isolated-vertex insertions,
//! and cascading vertex deletions.

use csm_graph::{EdgeUpdate, Update, UpdateStream, VLabel, VertexId};
use paracosm::algos::{testing, AlgoKind, AnyAlgorithm};
use paracosm::core::{static_match, ParaCosm, ParaCosmConfig};

#[test]
fn initial_matches_equal_static_count() {
    let (g, _) = testing::random_workload(3, 40, 3, 2, 100, 0, 0.0);
    let q = testing::random_walk_query(&g, 4, 5).expect("query");
    for kind in AlgoKind::ALL {
        let algo = kind.build(&g, &q);
        let engine: ParaCosm<AnyAlgorithm> =
            ParaCosm::new(g.clone(), q.clone(), algo, ParaCosmConfig::sequential());
        let got = engine.initial_matches(false).count;
        let want = testing::oracle_count(&g, &q, kind);
        assert_eq!(got, want, "{kind} initial matches");
    }
}

#[test]
fn vertex_insertions_are_trivial_for_matching() {
    let (g, _) = testing::random_workload(5, 25, 3, 1, 60, 0, 0.0);
    let q = testing::random_walk_query(&g, 6, 4).expect("query");
    let slots = g.vertex_slots() as u32;
    let stream: UpdateStream = vec![
        Update::InsertVertex {
            id: VertexId(slots + 2),
            label: VLabel(1),
        },
        Update::InsertVertex {
            id: VertexId(slots + 3),
            label: VLabel(0),
        },
        // And an edge wiring the new vertices in.
        Update::InsertEdge(EdgeUpdate::new(
            VertexId(slots + 2),
            VertexId(slots + 3),
            csm_graph::ELabel(0),
        )),
    ]
    .into_iter()
    .collect();
    for kind in [AlgoKind::Symbi, AlgoKind::TurboFlux, AlgoKind::GraphFlow] {
        testing::check_stream(&g, &q, &stream, kind, ParaCosmConfig::sequential());
    }
}

#[test]
fn vertex_deletion_cascades_and_counts_negatives() {
    let (g, _) = testing::random_workload(8, 25, 2, 1, 70, 0, 0.0);
    let q = testing::random_walk_query(&g, 9, 3).expect("query");
    // Delete the highest-degree vertex — maximum cascade.
    let hub = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
    assert!(g.degree(hub) > 0);
    let stream: UpdateStream = vec![Update::DeleteVertex { id: hub }].into_iter().collect();
    for kind in AlgoKind::ALL {
        testing::check_stream(&g, &q, &stream, kind, ParaCosmConfig::sequential());
    }
}

#[test]
fn duplicate_and_missing_edges_are_noops() {
    let (g, _) = testing::random_workload(12, 20, 2, 1, 50, 0, 0.0);
    let q = testing::random_walk_query(&g, 13, 3).expect("query");
    let (a, b, l) = g.edges().next().expect("an edge");
    let absent = {
        // Find a non-edge pair.
        let mut found = None;
        'outer: for x in g.vertices() {
            for y in g.vertices() {
                if x < y && !g.has_edge(x, y) {
                    found = Some((x, y));
                    break 'outer;
                }
            }
        }
        found.expect("a non-edge")
    };
    let stream: UpdateStream = vec![
        Update::InsertEdge(EdgeUpdate::new(a, b, l)), // duplicate insert
        Update::DeleteEdge(EdgeUpdate::new(absent.0, absent.1, l)), // missing delete
    ]
    .into_iter()
    .collect();
    for kind in [AlgoKind::Symbi, AlgoKind::NewSP] {
        let algo = kind.build(&g, &q);
        let mut engine: ParaCosm<AnyAlgorithm> =
            ParaCosm::new(g.clone(), q.clone(), algo, ParaCosmConfig::sequential());
        for &u in stream.updates() {
            let out = engine.process_update(u).unwrap();
            assert!(out.noop, "{kind}: {u:?} should be a no-op");
            assert_eq!(out.positives + out.negatives, 0);
        }
    }
}

#[test]
fn insert_delete_insert_roundtrip_restores_counts() {
    let (g, _) = testing::random_workload(17, 30, 2, 1, 80, 0, 0.0);
    let q = testing::random_walk_query(&g, 18, 4).expect("query");
    let (a, b, l) = g.edges().next().expect("an edge");
    let e = EdgeUpdate::new(a, b, l);
    for kind in AlgoKind::ALL {
        let algo = kind.build(&g, &q);
        let mut engine: ParaCosm<AnyAlgorithm> =
            ParaCosm::new(g.clone(), q.clone(), algo, ParaCosmConfig::sequential());
        let del = engine.process_update(Update::DeleteEdge(e)).unwrap();
        let ins = engine.process_update(Update::InsertEdge(e)).unwrap();
        assert_eq!(
            del.negatives, ins.positives,
            "{kind}: delete/insert of the same edge must be symmetric"
        );
        let total = engine.initial_matches(false).count;
        assert_eq!(
            total,
            testing::oracle_count(&g, &q, kind),
            "{kind} final state"
        );
    }
}

#[test]
fn deep_deletion_streams_stay_consistent() {
    // Delete many edges in a row — exercises downward ADS propagation.
    let (g, _) = testing::random_workload(23, 30, 2, 1, 90, 0, 0.0);
    let q = testing::random_walk_query(&g, 24, 4).expect("query");
    let stream: UpdateStream = g
        .edges()
        .take(40)
        .map(|(a, b, l)| Update::DeleteEdge(EdgeUpdate::new(a, b, l)))
        .collect();
    for kind in AlgoKind::ALL {
        testing::check_stream(&g, &q, &stream, kind, ParaCosmConfig::sequential());
    }
}

#[test]
fn engine_survives_unknown_vertices_with_error() {
    let (g, _) = testing::random_workload(27, 10, 2, 1, 20, 0, 0.0);
    let q = testing::random_walk_query(&g, 28, 3).expect("query");
    let algo = AlgoKind::GraphFlow.build(&g, &q);
    let mut engine: ParaCosm<AnyAlgorithm> =
        ParaCosm::new(g, q, algo, ParaCosmConfig::sequential());
    let bogus = Update::InsertEdge(EdgeUpdate::new(
        VertexId(0),
        VertexId(10_000),
        csm_graph::ELabel(0),
    ));
    assert!(engine.process_update(bogus).is_err());
    // The engine must remain usable afterwards.
    assert!(
        static_match::count_all(engine.graph(), engine.query())
            == engine.initial_matches(false).count
    );
}
