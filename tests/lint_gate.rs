//! Gate tests for the project invariant linter (`csm-lint`): the real
//! tree must pass, and a seeded violation must fail with a `file:line`
//! diagnostic and a nonzero exit code.

use std::path::PathBuf;
use std::process::Command;

fn lint_bin() -> &'static str {
    env!("CARGO_BIN_EXE_csm-lint")
}

#[test]
fn linter_passes_on_the_repo() {
    let out = Command::new(lint_bin())
        .arg(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run csm-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "csm-lint reported violations on the tree:\n{stdout}{stderr}"
    );
}

/// Build a throwaway `crates/` tree containing one seeded violation and
/// check the linter rejects it, pointing at the offending file and line.
#[test]
fn linter_fails_on_seeded_seqcst_violation() {
    let root = scratch_dir("seqcst");
    let src = root.join("crates/foo/src");
    std::fs::create_dir_all(&src).expect("mkdir scratch crate");
    std::fs::write(
        src.join("lib.rs"),
        "#![forbid(unsafe_code)]\n\
         use std::sync::atomic::{AtomicUsize, Ordering};\n\
         pub fn bump(c: &AtomicUsize) -> usize {\n\
             c.fetch_add(1, Ordering::SeqCst)\n\
         }\n",
    )
    .expect("write seeded violation");

    let out = Command::new(lint_bin())
        .arg(&root)
        .output()
        .expect("run csm-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "csm-lint accepted a seeded SeqCst violation:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/foo/src/lib.rs:4: [seqcst-denied]"),
        "diagnostic should carry file:line and rule, got:\n{stdout}"
    );

    std::fs::remove_dir_all(&root).ok();
}

/// Comments and string literals must not trip rules, and a missing
/// `#![forbid(unsafe_code)]` in a crate root must.
#[test]
fn linter_scrubs_comments_and_checks_forbid_unsafe() {
    let root = scratch_dir("scrub");
    let src = root.join("crates/bar/src");
    std::fs::create_dir_all(&src).expect("mkdir scratch crate");
    // No forbid(unsafe_code); the SeqCst mentions live only in a comment
    // and a string literal, so the sole expected diagnostic is the
    // missing attribute.
    std::fs::write(
        src.join("lib.rs"),
        "// Ordering::SeqCst in a comment is fine\n\
         pub const DOC: &str = \"Ordering::SeqCst in a string is fine\";\n",
    )
    .expect("write scratch crate");

    let out = Command::new(lint_bin())
        .arg(&root)
        .output()
        .expect("run csm-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "missing forbid(unsafe_code) not caught"
    );
    assert!(
        stdout.contains("crates/bar/src/lib.rs:1: [forbid-unsafe-missing]"),
        "expected only the forbid-unsafe diagnostic, got:\n{stdout}"
    );
    assert!(
        !stdout.contains("seqcst"),
        "commented/quoted SeqCst must not trip the linter:\n{stdout}"
    );

    std::fs::remove_dir_all(&root).ok();
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csm-lint-gate-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}
