//! Gate tests for the project static analyzer: the real tree must
//! pass, a seeded violation must fail with a `file:line` diagnostic
//! and a nonzero exit code, and the committed public-API snapshot
//! (`API.md`) must match what `--api-dump` extracts from the tree.
//!
//! `csm-analyze` is the engine; `csm-lint` is a compatibility alias
//! for the same driver, so both binaries are exercised here (the
//! scratch-tree tests drive the alias, the artifact/parity tests the
//! primary name). The analyzer's own fixture corpus lives in
//! `crates/analyze/tests/fixtures.rs`.

use std::path::PathBuf;
use std::process::Command;

fn lint_bin() -> &'static str {
    env!("CARGO_BIN_EXE_csm-lint")
}

fn analyze_bin() -> &'static str {
    env!("CARGO_BIN_EXE_csm-analyze")
}

#[test]
fn linter_passes_on_the_repo() {
    let out = Command::new(lint_bin())
        .arg(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run csm-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "csm-lint reported violations on the tree:\n{stdout}{stderr}"
    );
}

/// The primary binary must also pass on the tree, and its `--json`
/// artifact (what CI uploads) must be well-formed and agree with the
/// exit status.
#[test]
fn analyzer_passes_and_writes_json_artifact() {
    let artifact = scratch_dir("json").with_extension("json");
    let out = Command::new(analyze_bin())
        .arg(env!("CARGO_MANIFEST_DIR"))
        .arg("--json")
        .arg(&artifact)
        .output()
        .expect("run csm-analyze");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "csm-analyze reported violations on the tree:\n{stdout}{stderr}"
    );
    let json = std::fs::read_to_string(&artifact).expect("read --json artifact");
    let compact: String = json.split_whitespace().collect();
    assert!(
        compact.contains("\"tool\":\"csm-analyze\"") && compact.contains("\"violations\":0"),
        "artifact should carry the tool name and a zero violation count:\n{json}"
    );
    std::fs::remove_file(&artifact).ok();
}

/// Both binary names are the same engine: their API dumps must be
/// byte-identical.
#[test]
fn lint_alias_matches_analyzer_api_dump() {
    let a = Command::new(analyze_bin())
        .arg("--api-dump")
        .arg(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run csm-analyze --api-dump");
    let b = Command::new(lint_bin())
        .arg("--api-dump")
        .arg(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run csm-lint --api-dump");
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&b.stdout),
        "csm-lint must stay a byte-identical alias of csm-analyze"
    );
}

/// Build a throwaway `crates/` tree containing one seeded violation and
/// check the linter rejects it, pointing at the offending file and line.
#[test]
fn linter_fails_on_seeded_seqcst_violation() {
    let root = scratch_dir("seqcst");
    let src = root.join("crates/foo/src");
    std::fs::create_dir_all(&src).expect("mkdir scratch crate");
    std::fs::write(
        src.join("lib.rs"),
        "#![forbid(unsafe_code)]\n\
         use std::sync::atomic::{AtomicUsize, Ordering};\n\
         pub fn bump(c: &AtomicUsize) -> usize {\n\
             c.fetch_add(1, Ordering::SeqCst)\n\
         }\n",
    )
    .expect("write seeded violation");

    let out = Command::new(lint_bin())
        .arg(&root)
        .output()
        .expect("run csm-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "csm-lint accepted a seeded SeqCst violation:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/foo/src/lib.rs:4: [seqcst-denied]"),
        "diagnostic should carry file:line and rule, got:\n{stdout}"
    );

    std::fs::remove_dir_all(&root).ok();
}

/// Comments and string literals must not trip rules, and a missing
/// `#![forbid(unsafe_code)]` in a crate root must.
#[test]
fn linter_scrubs_comments_and_checks_forbid_unsafe() {
    let root = scratch_dir("scrub");
    let src = root.join("crates/bar/src");
    std::fs::create_dir_all(&src).expect("mkdir scratch crate");
    // No forbid(unsafe_code); the SeqCst mentions live only in a comment
    // and a string literal, so the sole expected diagnostic is the
    // missing attribute.
    std::fs::write(
        src.join("lib.rs"),
        "// Ordering::SeqCst in a comment is fine\n\
         pub const DOC: &str = \"Ordering::SeqCst in a string is fine\";\n",
    )
    .expect("write scratch crate");

    let out = Command::new(lint_bin())
        .arg(&root)
        .output()
        .expect("run csm-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "missing forbid(unsafe_code) not caught"
    );
    assert!(
        stdout.contains("crates/bar/src/lib.rs:1: [forbid-unsafe-missing]"),
        "expected only the forbid-unsafe diagnostic, got:\n{stdout}"
    );
    assert!(
        !stdout.contains("seqcst"),
        "commented/quoted SeqCst must not trip the linter:\n{stdout}"
    );

    std::fs::remove_dir_all(&root).ok();
}

/// `std::net` is confined to the telemetry plane: a seeded socket use in
/// any other library file must fail with the `std-net-confined` rule,
/// while the sanctioned file path stays clean.
#[test]
fn linter_fails_on_seeded_std_net_violation() {
    let root = scratch_dir("stdnet");
    let src = root.join("crates/foo/src");
    std::fs::create_dir_all(&src).expect("mkdir scratch crate");
    std::fs::write(
        src.join("lib.rs"),
        "#![forbid(unsafe_code)]\n\
         pub fn leak() -> std::io::Result<std::net::TcpListener> {\n\
             std::net::TcpListener::bind(\"127.0.0.1:0\")\n\
         }\n",
    )
    .expect("write seeded violation");
    // The sanctioned file: same token, must not be flagged.
    let tele = root.join("crates/service/src");
    std::fs::create_dir_all(&tele).expect("mkdir scratch service crate");
    std::fs::write(tele.join("lib.rs"), "#![forbid(unsafe_code)]\n").expect("write lib");
    std::fs::write(
        tele.join("telemetry.rs"),
        "pub fn ok() { let _ = std::net::TcpListener::bind(\"127.0.0.1:0\"); }\n",
    )
    .expect("write telemetry scratch");

    let out = Command::new(lint_bin())
        .arg(&root)
        .output()
        .expect("run csm-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "csm-lint accepted a seeded std::net violation:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/foo/src/lib.rs:2: [std-net-confined]"),
        "diagnostic should carry file:line and rule, got:\n{stdout}"
    );
    // The rule's message text names the sanctioned path; what must not
    // appear is a diagnostic *located* there (path:line prefix).
    assert!(
        !stdout.contains("telemetry.rs:"),
        "the sanctioned telemetry file must not be flagged:\n{stdout}"
    );

    std::fs::remove_dir_all(&root).ok();
}

/// Canonical sub-pattern key construction is confined to the query
/// decomposition and the shared index: a seeded `EdgePatternKey` literal
/// in any other library file must fail with `subpattern-key-confined`,
/// while the two sanctioned paths stay clean.
#[test]
fn linter_fails_on_seeded_subpattern_key_violation() {
    let root = scratch_dir("subpattern");
    let src = root.join("crates/foo/src");
    std::fs::create_dir_all(&src).expect("mkdir scratch crate");
    std::fs::write(
        src.join("lib.rs"),
        "#![forbid(unsafe_code)]\n\
         pub fn fork_the_scheme(a: u32, b: u32) -> (u32, u32) {\n\
             let k = EdgePatternKey::canonical(a, b, None);\n\
             k\n\
         }\n",
    )
    .expect("write seeded violation");
    // The sanctioned files: same tokens, must not be flagged.
    for (dir, name) in [
        ("crates/graph/src", "query.rs"),
        ("crates/service/src", "shared.rs"),
    ] {
        let d = root.join(dir);
        std::fs::create_dir_all(&d).expect("mkdir sanctioned dir");
        std::fs::write(d.join("lib.rs"), "#![forbid(unsafe_code)]\n").expect("write lib");
        std::fs::write(
            d.join(name),
            "pub fn ok(a: u32, b: u32) { let _ = EdgePatternKey::canonical(a, b, None); }\n",
        )
        .expect("write sanctioned scratch");
    }

    let out = Command::new(lint_bin())
        .arg(&root)
        .output()
        .expect("run csm-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "csm-lint accepted a seeded sub-pattern key violation:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/foo/src/lib.rs:3: [subpattern-key-confined]"),
        "diagnostic should carry file:line and rule, got:\n{stdout}"
    );
    assert!(
        !stdout.contains("query.rs:") && !stdout.contains("shared.rs:"),
        "the sanctioned files must not be flagged:\n{stdout}"
    );

    std::fs::remove_dir_all(&root).ok();
}

/// The flight-recorder record path is allocation-free by contract and
/// its ring internals are confined to the trace module: a seeded
/// allocation in a scratch `trace/flight.rs` and a seeded `FlightShard`
/// mention outside `crates/core/src/trace/` must both fail with
/// `flight-hot-path`, while cold-module allocation stays clean.
#[test]
fn linter_fails_on_seeded_flight_hot_path_violation() {
    let root = scratch_dir("flight");
    let trace = root.join("crates/core/src/trace");
    std::fs::create_dir_all(trace.join("flight")).expect("mkdir scratch trace module");
    std::fs::write(
        root.join("crates/core/src/lib.rs"),
        "#![forbid(unsafe_code)]\n",
    )
    .expect("write lib");
    // Seeded violation 1: an allocation in the record path.
    std::fs::write(
        trace.join("flight.rs"),
        "pub fn record_all(spans: &[u64]) -> Vec<u64> {\n\
             spans.to_vec()\n\
         }\n",
    )
    .expect("write seeded hot-path violation");
    // Sanctioned: the cold module allocates freely.
    std::fs::write(
        trace.join("flight/cold.rs"),
        "pub fn snapshot() -> Vec<u64> {\n\
             Vec::with_capacity(8)\n\
         }\n",
    )
    .expect("write cold scratch");
    // Seeded violation 2: ring internals named outside the trace module.
    let svc = root.join("crates/service/src");
    std::fs::create_dir_all(&svc).expect("mkdir scratch service crate");
    std::fs::write(svc.join("lib.rs"), "#![forbid(unsafe_code)]\n").expect("write lib");
    std::fs::write(
        svc.join("rogue.rs"),
        "pub fn poke(shard: &FlightShard) -> u64 {\n\
             shard.seq()\n\
         }\n",
    )
    .expect("write seeded confinement violation");

    let out = Command::new(lint_bin())
        .arg(&root)
        .output()
        .expect("run csm-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "csm-lint accepted seeded flight-hot-path violations:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/core/src/trace/flight.rs:2: [flight-hot-path]"),
        "allocation in the record path should be flagged at file:line, got:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/service/src/rogue.rs:1: [flight-hot-path]"),
        "ring internals outside trace/ should be flagged, got:\n{stdout}"
    );
    assert!(
        !stdout.contains("cold.rs:"),
        "the cold module must not be flagged:\n{stdout}"
    );

    std::fs::remove_dir_all(&root).ok();
}

/// The public surface under `crates/*/src` must match the committed
/// `API.md` snapshot exactly: any `pub` item added, removed or re-signed
/// without regenerating the snapshot is surface drift and fails here.
#[test]
fn api_snapshot_is_current() {
    let out = Command::new(lint_bin())
        .arg("--api-dump")
        .arg(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run csm-lint --api-dump");
    assert!(
        out.status.success(),
        "csm-lint --api-dump failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let current = String::from_utf8(out.stdout).expect("utf-8 dump");
    let committed =
        std::fs::read_to_string(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("API.md"))
            .expect("read committed API.md");
    if current != committed {
        let diff: Vec<String> = {
            let cur: Vec<&str> = current.lines().collect();
            let com: Vec<&str> = committed.lines().collect();
            let mut d = Vec::new();
            for line in &cur {
                if !com.contains(line) {
                    d.push(format!("+ {line}"));
                }
            }
            for line in &com {
                if !cur.contains(line) {
                    d.push(format!("- {line}"));
                }
            }
            d
        };
        panic!(
            "public API drifted from the committed API.md snapshot.\n\
             If the change is deliberate, regenerate with:\n\
             \n    cargo run --bin csm-analyze -- --api-dump > API.md\n\n\
             line-level drift:\n{}",
            diff.join("\n")
        );
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csm-lint-gate-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}
