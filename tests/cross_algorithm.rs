//! Cross-algorithm agreement: all five baselines must report identical
//! incremental matches on identical streams (CaLiG under edge-label-blind
//! semantics, per the paper's §5.1 setup), each additionally checked
//! against the brute-force recomputation oracle per update.

use paracosm::algos::{testing, AlgoKind};
use paracosm::core::ParaCosmConfig;

#[test]
fn all_algorithms_agree_on_insert_only_streams() {
    for seed in [2, 9, 77] {
        let (g, stream) = testing::random_workload(seed, 40, 3, 1, 90, 50, 0.0);
        let q = testing::random_walk_query(&g, seed + 1, 4).expect("query");
        let mut totals = Vec::new();
        for kind in AlgoKind::ALL {
            let t = testing::check_stream(&g, &q, &stream, kind, ParaCosmConfig::sequential());
            totals.push((kind, t));
        }
        // Single edge label ⇒ CaLiG agrees with everyone else too.
        let first = totals[0].1;
        for (kind, t) in &totals {
            assert_eq!(*t, first, "{kind} disagrees on seed {seed}");
        }
    }
}

#[test]
fn all_algorithms_agree_on_mixed_streams() {
    let (g, stream) = testing::random_workload(4, 36, 4, 1, 80, 70, 0.35);
    let q = testing::random_walk_query(&g, 6, 5).expect("query");
    let mut totals = Vec::new();
    for kind in AlgoKind::ALL {
        let t = testing::check_stream(&g, &q, &stream, kind, ParaCosmConfig::sequential());
        totals.push(t);
    }
    assert!(totals.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn edge_labels_separate_calig_from_the_rest() {
    // With 3 edge labels, CaLiG (label-blind) must see *at least* as many
    // matches as the label-respecting algorithms; both are oracle-checked.
    let (g, stream) = testing::random_workload(11, 30, 2, 3, 70, 40, 0.2);
    let q = testing::random_walk_query(&g, 3, 4).expect("query");
    let strict = testing::check_stream(
        &g,
        &q,
        &stream,
        AlgoKind::Symbi,
        ParaCosmConfig::sequential(),
    );
    let blind = testing::check_stream(
        &g,
        &q,
        &stream,
        AlgoKind::CaLiG,
        ParaCosmConfig::sequential(),
    );
    assert!(blind.0 >= strict.0, "label-blind positives must dominate");
}

#[test]
fn larger_queries_still_agree() {
    let (g, stream) = testing::random_workload(21, 50, 4, 1, 110, 20, 0.2);
    if let Some(q) = testing::random_walk_query(&g, 23, 6) {
        let mut totals = Vec::new();
        for kind in AlgoKind::ALL {
            totals.push(testing::check_stream(
                &g,
                &q,
                &stream,
                kind,
                ParaCosmConfig::sequential(),
            ));
        }
        assert!(totals.windows(2).all(|w| w[0] == w[1]));
    }
}
