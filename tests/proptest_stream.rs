//! Property-based tests: random workloads, random queries, random engine
//! configurations — every configuration must agree with the brute-force
//! oracle, and the graph's structural invariants must survive any stream.

use csm_graph::{DataGraph, EdgeUpdate, Update, UpdateStream, VLabel, VertexId};
use paracosm::algos::{testing, AlgoKind};
use paracosm::core::ParaCosmConfig;
use proptest::prelude::*;

/// A compact generator: (seed, vertices, labels, base edges, stream len,
/// delete ratio, query size).
fn workload_params() -> impl Strategy<Value = (u64, u32, u32, usize, usize, f64, usize)> {
    // Labels start at 2: single-label graphs are effectively unlabeled and
    // make the brute-force oracle blow up combinatorially.
    (
        any::<u64>(),
        10u32..34,
        2u32..5,
        12usize..60,
        8usize..30,
        0.0f64..0.5,
        3usize..6,
    )
}

fn algo_strategy() -> impl Strategy<Value = AlgoKind> {
    prop_oneof![
        Just(AlgoKind::GraphFlow),
        Just(AlgoKind::TurboFlux),
        Just(AlgoKind::Symbi),
        Just(AlgoKind::CaLiG),
        Just(AlgoKind::NewSP),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Sequential engines always agree with recomputation, per update.
    #[test]
    fn sequential_matches_oracle(
        (seed, n, labels, base, len, del, qsize) in workload_params(),
        kind in algo_strategy(),
    ) {
        let (g, stream) = testing::random_workload(seed, n, labels, 2, base, len, del);
        if let Some(q) = testing::random_walk_query(&g, seed ^ 0xABCD, qsize) {
            testing::check_stream(&g, &q, &stream, kind, ParaCosmConfig::sequential());
        }
    }

    /// The batch executor agrees with the oracle for arbitrary batch sizes.
    #[test]
    fn batch_executor_matches_oracle(
        (seed, n, labels, base, len, del, qsize) in workload_params(),
        kind in algo_strategy(),
        batch in 1usize..32,
    ) {
        let (g, stream) = testing::random_workload(seed, n, labels, 2, base, len, del);
        if let Some(q) = testing::random_walk_query(&g, seed ^ 0xBEEF, qsize) {
            let cfg = ParaCosmConfig::parallel(3).with_batch_size(batch);
            testing::check_stream_totals(&g, &q, &stream, kind, cfg);
        }
    }

    /// Graph invariants (sorted symmetric adjacency, exact edge counts,
    /// label buckets) survive arbitrary update streams.
    #[test]
    fn graph_invariants_hold_under_streams(
        seed in any::<u64>(),
        n in 4u32..40,
        ops in proptest::collection::vec((0u32..40, 0u32..40, 0u32..3, any::<bool>()), 1..80),
    ) {
        let mut g = DataGraph::new();
        for i in 0..n {
            g.add_vertex(VLabel(i % 3));
        }
        let _ = seed;
        for (a, b, l, ins) in ops {
            let (a, b) = (VertexId(a % n), VertexId(b % n));
            if a == b { continue; }
            if ins {
                let _ = g.insert_edge(a, b, csm_graph::ELabel(l));
            } else {
                let _ = g.remove_edge(a, b);
            }
        }
        prop_assert!(g.check_invariants().is_ok());
    }

    /// Replaying a stream and then undoing its effect restores the initial
    /// match count (engine state has no hysteresis).
    #[test]
    fn stream_then_inverse_restores_match_count(
        (seed, n, labels, base, len, _del, qsize) in workload_params(),
    ) {
        // Insert-only stream, then delete everything in reverse.
        let (g, stream) = testing::random_workload(seed, n, labels, 1, base, len, 0.0);
        let Some(q) = testing::random_walk_query(&g, seed ^ 0xF00D, qsize) else { return Ok(()); };
        let kind = AlgoKind::Symbi;
        let algo = kind.build(&g, &q);
        let mut engine: paracosm::core::ParaCosm<paracosm::algos::AnyAlgorithm> =
            paracosm::core::ParaCosm::new(g.clone(), q.clone(), algo, ParaCosmConfig::sequential());
        let before = engine.initial_matches(false).count;
        let mut inverse: Vec<Update> = Vec::new();
        for &u in stream.updates() {
            engine.process_update(u).unwrap();
            if let Update::InsertEdge(e) = u {
                inverse.push(Update::DeleteEdge(e));
            }
        }
        for u in inverse.into_iter().rev() {
            engine.process_update(u).unwrap();
        }
        let after = engine.initial_matches(false).count;
        prop_assert_eq!(before, after);
    }

    /// Positive and negative deltas are symmetric: deleting an edge right
    /// after inserting it reports exactly the matches the insert created.
    #[test]
    fn insert_delete_symmetry(
        (seed, n, labels, base, _len, _del, qsize) in workload_params(),
        kind in algo_strategy(),
        a in 0u32..36,
        b in 0u32..36,
    ) {
        let (g, _) = testing::random_workload(seed, n, labels, 1, base, 0, 0.0);
        let (a, b) = (VertexId(a % n), VertexId(b % n));
        if a == b || g.has_edge(a, b) { return Ok(()); }
        let Some(q) = testing::random_walk_query(&g, seed ^ 0xCAFE, qsize) else { return Ok(()); };
        let e = EdgeUpdate::new(a, b, csm_graph::ELabel(0));
        let stream: UpdateStream =
            vec![Update::InsertEdge(e), Update::DeleteEdge(e)].into_iter().collect();
        let algo = kind.build(&g, &q);
        let mut engine: paracosm::core::ParaCosm<paracosm::algos::AnyAlgorithm> =
            paracosm::core::ParaCosm::new(g, q, algo, ParaCosmConfig::sequential());
        let ins = engine.process_update(stream.updates()[0]).unwrap();
        let del = engine.process_update(stream.updates()[1]).unwrap();
        prop_assert_eq!(ins.positives, del.negatives);
    }
}
