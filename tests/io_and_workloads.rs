//! End-to-end IO: serialize a generated workload to the standard CSM text
//! formats, reload it, and verify the engine produces identical results.

use paracosm::algos::{AlgoKind, AnyAlgorithm};
use paracosm::core::{ParaCosm, ParaCosmConfig};
use paracosm::datagen::{DatasetKind, Scale, WorkloadConfig};
use paracosm::graph::io;

#[test]
fn workload_roundtrips_through_text_files() {
    let mut cfg = WorkloadConfig::paper_cell(DatasetKind::Amazon, Scale::Xs, 4);
    cfg.n_queries = 2;
    cfg.max_stream_len = 60;
    let w = paracosm::datagen::build_workload(&cfg);

    // Serialize all three artifacts.
    let mut gbuf = Vec::new();
    io::write_data_graph(&w.initial, &mut gbuf).unwrap();
    let mut qbuf = Vec::new();
    io::write_query_graph(&w.queries[0], &mut qbuf).unwrap();
    let mut sbuf = Vec::new();
    io::write_update_stream(&w.stream, &mut sbuf).unwrap();

    // Reload.
    let g2 = io::read_data_graph(gbuf.as_slice()).unwrap();
    let q2 = io::read_query_graph(qbuf.as_slice()).unwrap();
    let s2 = io::read_update_stream(sbuf.as_slice()).unwrap();
    assert_eq!(g2.num_edges(), w.initial.num_edges());
    assert_eq!(q2.num_edges(), w.queries[0].num_edges());
    assert_eq!(s2, w.stream);

    // Both copies must produce identical stream results.
    let run = |g: &paracosm::graph::DataGraph,
               q: &paracosm::graph::QueryGraph,
               s: &paracosm::graph::UpdateStream| {
        let algo = AlgoKind::TurboFlux.build(g, q);
        let mut e: ParaCosm<AnyAlgorithm> =
            ParaCosm::new(g.clone(), q.clone(), algo, ParaCosmConfig::sequential());
        let out = e.process_stream(s).unwrap();
        (out.positives, out.negatives)
    };
    assert_eq!(
        run(&w.initial, &w.queries[0], &w.stream),
        run(&g2, &q2, &s2)
    );
}

#[test]
fn files_on_disk_roundtrip() {
    let dir = std::env::temp_dir().join("paracosm_io_test");
    std::fs::create_dir_all(&dir).unwrap();
    let mut cfg = WorkloadConfig::paper_cell(DatasetKind::LSBench, Scale::Xs, 3);
    cfg.n_queries = 1;
    cfg.max_stream_len = 20;
    let w = paracosm::datagen::build_workload(&cfg);

    let gpath = dir.join("graph.txt");
    let spath = dir.join("stream.txt");
    io::write_data_graph(&w.initial, std::fs::File::create(&gpath).unwrap()).unwrap();
    io::write_update_stream(&w.stream, std::fs::File::create(&spath).unwrap()).unwrap();
    let g2 = io::load_data_graph(&gpath).unwrap();
    let s2 = io::load_update_stream(&spath).unwrap();
    assert_eq!(g2.num_vertices(), w.initial.num_vertices());
    assert_eq!(s2.len(), w.stream.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_dataset_builds_and_runs_a_tiny_stream() {
    for dataset in DatasetKind::ALL {
        let mut cfg = WorkloadConfig::paper_cell(dataset, Scale::Xs, 4);
        cfg.n_queries = 1;
        cfg.max_stream_len = 25;
        let w = paracosm::datagen::build_workload(&cfg);
        assert!(!w.queries.is_empty(), "{dataset}: no queries extracted");
        let algo = AlgoKind::NewSP.build(&w.initial, &w.queries[0]);
        let mut e: ParaCosm<AnyAlgorithm> = ParaCosm::new(
            w.initial.clone(),
            w.queries[0].clone(),
            algo,
            ParaCosmConfig::parallel(2).with_batch_size(8),
        );
        let out = e.process_stream(&w.stream).unwrap();
        assert_eq!(out.updates_applied as usize, w.stream.len());
    }
}
