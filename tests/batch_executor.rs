//! Batch-executor (inter-update parallelism) semantics: classifier
//! soundness, per-stage accounting, deferral, and tricky same-batch
//! interactions (duplicates, insert/delete flips, vertex ops mid-batch).

use csm_graph::{
    DataGraph, ELabel, EdgeUpdate, QueryGraph, Update, UpdateStream, VLabel, VertexId,
};
use paracosm::algos::{testing, AlgoKind, AnyAlgorithm};
use paracosm::core::{ParaCosm, ParaCosmConfig};

fn engine(g: &DataGraph, q: &QueryGraph, kind: AlgoKind, batch: usize) -> ParaCosm<AnyAlgorithm> {
    let algo = kind.build(g, q);
    ParaCosm::new(
        g.clone(),
        q.clone(),
        algo,
        ParaCosmConfig::parallel(4).with_batch_size(batch),
    )
}

/// Two-label setup where label-safety is easy to stage.
fn setup() -> (DataGraph, QueryGraph) {
    let mut g = DataGraph::new();
    for i in 0..30 {
        // Labels 0 and 1 participate in the query; label 2 never does.
        g.add_vertex(VLabel(i % 3));
    }
    let mut q = QueryGraph::new();
    let a = q.add_vertex(VLabel(0));
    let b = q.add_vertex(VLabel(1));
    let c = q.add_vertex(VLabel(0));
    q.add_edge(a, b, ELabel(0)).unwrap();
    q.add_edge(b, c, ELabel(0)).unwrap();
    (g, q)
}

fn v(i: u32) -> VertexId {
    VertexId(i)
}

#[test]
fn label_safe_updates_skip_everything() {
    let (g, q) = setup();
    // Edges between two label-2 vertices can never matter.
    let stream: UpdateStream = (0..8)
        .map(|i| Update::InsertEdge(EdgeUpdate::new(v(2 + 3 * i), v(2 + 3 * (i + 1)), ELabel(0))))
        .collect();
    let mut e = engine(&g, &q, AlgoKind::Symbi, 64);
    let out = e.process_stream(&stream).unwrap();
    assert_eq!(out.positives, 0);
    let c = e.stats().classifier;
    assert_eq!(c.total, 8);
    assert_eq!(c.safe_label, 8);
    assert_eq!(c.unsafe_count, 0);
    // All edges really landed in G.
    assert_eq!(e.graph().num_edges(), g.num_edges() + 8);
}

#[test]
fn match_creating_update_is_unsafe_and_counted() {
    let (g, q) = setup();
    // Build the path v0(L0) - v1(L1) - v3(L0): two edges; second one
    // completes a match.
    let stream: UpdateStream = vec![
        Update::InsertEdge(EdgeUpdate::new(v(0), v(1), ELabel(0))),
        Update::InsertEdge(EdgeUpdate::new(v(1), v(3), ELabel(0))),
    ]
    .into_iter()
    .collect();
    let mut e = engine(&g, &q, AlgoKind::Symbi, 64);
    let out = e.process_stream(&stream).unwrap();
    // Path has a reversal automorphism → 2 mappings.
    assert_eq!(out.positives, 2);
    assert!(e.stats().classifier.unsafe_count >= 1);
}

#[test]
fn duplicate_edges_within_one_batch_are_applied_once() {
    let (g, q) = setup();
    let dup = EdgeUpdate::new(v(2), v(5), ELabel(0)); // label-safe pair
    let stream: UpdateStream = vec![
        Update::InsertEdge(dup),
        Update::InsertEdge(dup),
        Update::InsertEdge(dup),
    ]
    .into_iter()
    .collect();
    let mut e = engine(&g, &q, AlgoKind::GraphFlow, 64);
    e.process_stream(&stream).unwrap();
    assert_eq!(e.graph().num_edges(), g.num_edges() + 1);
    e.graph().check_invariants().unwrap();
}

#[test]
fn insert_then_delete_same_edge_in_one_batch() {
    let (g, q) = setup();
    let x = EdgeUpdate::new(v(2), v(5), ELabel(0));
    let stream: UpdateStream = vec![
        Update::InsertEdge(x),
        Update::DeleteEdge(x),
        Update::InsertEdge(x),
    ]
    .into_iter()
    .collect();
    let mut e = engine(&g, &q, AlgoKind::NewSP, 64);
    e.process_stream(&stream).unwrap();
    assert!(e.graph().has_edge(x.src, x.dst));
    assert_eq!(e.graph().num_edges(), g.num_edges() + 1);
    e.graph().check_invariants().unwrap();
}

#[test]
fn vertex_ops_mid_batch_flush_and_apply_in_order() {
    let (g, q) = setup();
    let nv = g.vertex_slots() as u32;
    let stream: UpdateStream = vec![
        Update::InsertEdge(EdgeUpdate::new(v(2), v(5), ELabel(0))), // label-safe
        Update::InsertVertex {
            id: VertexId(nv),
            label: VLabel(2),
        },
        Update::InsertEdge(EdgeUpdate::new(v(2), VertexId(nv), ELabel(0))), // uses new vertex
    ]
    .into_iter()
    .collect();
    let mut e = engine(&g, &q, AlgoKind::TurboFlux, 64);
    let out = e.process_stream(&stream).unwrap();
    assert_eq!(out.updates_applied, 3);
    assert!(e.graph().is_alive(VertexId(nv)));
    assert!(e.graph().has_edge(v(2), VertexId(nv)));
}

#[test]
fn deferral_preserves_totals_regardless_of_batch_size() {
    // A stream alternating safe and unsafe updates; every batch size must
    // agree with the sequential oracle.
    let (g, stream) = testing::random_workload(55, 24, 2, 1, 40, 60, 0.3);
    let q = testing::random_walk_query(&g, 56, 3).expect("query");
    for kind in [AlgoKind::Symbi, AlgoKind::CaLiG] {
        for batch in [1, 2, 5, 64] {
            let cfg = ParaCosmConfig::parallel(3).with_batch_size(batch);
            testing::check_stream_totals(&g, &q, &stream, kind, cfg);
        }
    }
}

#[test]
fn classifier_contract_safe_implies_no_matches() {
    // The machine-checkable heart of §4.2: whenever the classifier says
    // safe, brute-force recomputation must agree the delta is empty.
    let (g, stream) = testing::random_workload(66, 30, 3, 2, 60, 80, 0.25);
    let q = testing::random_walk_query(&g, 67, 4).expect("query");
    for kind in AlgoKind::ALL {
        // check_stream_totals already asserts totals; here additionally run
        // batch-by-batch so the classifier is live, then assert equality
        // again at a finer batch size.
        let cfg = ParaCosmConfig::parallel(2).with_batch_size(4);
        testing::check_stream_totals(&g, &q, &stream, kind, cfg);
    }
}

#[test]
fn stream_outcome_accounts_every_update() {
    let (g, q) = setup();
    let stream: UpdateStream = (0..20)
        .map(|i| Update::InsertEdge(EdgeUpdate::new(v(i), v(i + 1), ELabel(0))))
        .collect();
    let mut e = engine(&g, &q, AlgoKind::GraphFlow, 6);
    let out = e.process_stream(&stream).unwrap();
    assert_eq!(out.updates_applied, 20);
    assert!(!out.timed_out);
}
