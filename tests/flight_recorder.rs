//! Flight-recorder integration tests: span well-formedness under
//! concurrent writers, tearing bounds across ring wrap, end-to-end span
//! structure for a served stream, and the hot-path record cost the
//! always-on default relies on (EXPERIMENTS.md `flight_record_hot_path`).

use paracosm::algos::testing;
use paracosm::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn triangle() -> QueryGraph {
    let mut q = QueryGraph::new();
    let u: Vec<_> = (0..3).map(|_| q.add_vertex(VLabel(0))).collect();
    q.add_edge(u[0], u[1], ELabel(0)).unwrap();
    q.add_edge(u[1], u[2], ELabel(0)).unwrap();
    q.add_edge(u[0], u[2], ELabel(0)).unwrap();
    q
}

fn path3(l0: u32, l1: u32, l2: u32) -> QueryGraph {
    let mut q = QueryGraph::new();
    let a = q.add_vertex(VLabel(l0));
    let b = q.add_vertex(VLabel(l1));
    let c = q.add_vertex(VLabel(l2));
    q.add_edge(a, b, ELabel(0)).unwrap();
    q.add_edge(b, c, ELabel(0)).unwrap();
    q
}

/// Per-shard invariants every snapshot must satisfy, live or quiescent:
/// sequences strictly ascending, timestamps monotone, spans real.
fn assert_shards_coherent(snap: &FlightSnapshot) {
    for (shard, evs) in snap.shards.iter().enumerate() {
        for w in evs.windows(2) {
            assert!(
                w[0].seq < w[1].seq,
                "shard {shard}: sequences must ascend ({} !< {})",
                w[0].seq,
                w[1].seq
            );
            assert!(
                w[0].ts_ns <= w[1].ts_ns,
                "shard {shard}: single-writer timestamps must be monotone"
            );
        }
        for e in evs {
            assert!(
                e.span.is_some(),
                "shard {shard}: recorded span must be real"
            );
        }
    }
}

/// Four session-shard writers fan out concurrently with a snapshotting
/// reader. Every snapshot taken mid-flight is coherent, and the final
/// snapshot is fully well-formed: every opened span closes, every
/// `fanout` span's parent `admit` exists on the service shard, and
/// per-shard timestamps are monotone.
#[test]
fn concurrent_writers_produce_well_formed_spans() {
    const WRITERS: usize = 4;
    const SPANS: u64 = 256;
    let f = Arc::new(FlightRecorder::new(FlightConfig {
        capacity: 4096,
        session_shards: WRITERS,
    }));

    // Service shard first: one admit-begin per span, written before any
    // fan-out thread starts, so parents always precede children.
    let spans: Vec<SpanId> = (0..SPANS).map(|_| f.begin_span()).collect();
    for (i, &s) in spans.iter().enumerate() {
        f.begin(0, s, FlightStage::Admit, i as u64);
    }

    let done = Arc::new(AtomicBool::new(false));
    let reader = {
        let f = Arc::clone(&f);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut snaps = 0u64;
            while !done.load(Ordering::Relaxed) {
                let snap = f.snapshot();
                assert_shards_coherent(&snap);
                for e in snap.shards.iter().flatten() {
                    assert!(
                        e.span.0 <= f.spans_minted(),
                        "snapshot observed an unminted span {:?}",
                        e.span
                    );
                }
                snaps += 1;
            }
            snaps
        })
    };

    // One writer per session shard (sessions 0..WRITERS hash onto
    // distinct shards 1..=WRITERS), preserving single-writer-per-shard.
    let writers: Vec<_> = (0..WRITERS as u32)
        .map(|sid| {
            let f = Arc::clone(&f);
            let spans = spans.clone();
            std::thread::spawn(move || {
                for &s in &spans {
                    f.fan_begin(s, FanKind::Engine, sid, 0);
                    f.fan_end(s, FanKind::SharedHit, sid, u64::from(sid));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    for &s in &spans {
        f.end(0, s, FlightStage::Admit, 0);
    }
    done.store(true, Ordering::Relaxed);
    let snaps = reader.join().unwrap();
    assert!(
        snaps > 0,
        "the reader must have raced at least one snapshot"
    );

    let snap = f.snapshot();
    assert_shards_coherent(&snap);
    assert_eq!(snap.shards.len(), WRITERS + 1);
    assert!(snap.dropped.iter().all(|&d| d == 0), "capacity fits all");

    // Every opened span closes: admit pairs on shard 0, fan pairs on
    // each session shard, one per (span, session).
    let admits_open: Vec<SpanId> = snap.shards[0]
        .iter()
        .filter(|e| e.stage == FlightStage::Admit && e.begin)
        .map(|e| e.span)
        .collect();
    assert_eq!(admits_open.len(), SPANS as usize);
    for &s in &spans {
        assert_eq!(
            snap.shards[0]
                .iter()
                .filter(|e| e.span == s && e.stage == FlightStage::Admit && !e.begin)
                .count(),
            1,
            "span {s:?}: admit must close exactly once"
        );
    }
    for shard in &snap.shards[1..] {
        assert_eq!(shard.len(), 2 * SPANS as usize);
        for e in shard {
            assert_eq!(e.stage, FlightStage::Fanout);
            // Every fanout span's parent admit exists.
            assert!(
                admits_open.contains(&e.span),
                "fanout span {:?} has no parent admit",
                e.span
            );
        }
        for &s in &spans {
            let opens = shard.iter().filter(|e| e.span == s && e.begin).count();
            let closes = shard.iter().filter(|e| e.span == s && !e.begin).count();
            assert_eq!((opens, closes), (1, 1), "span {s:?}: unbalanced fanout");
        }
    }
}

/// Tearing is bounded to whole events: writers hammer tiny rings across
/// thousands of wraps while a reader snapshots continuously. Every event
/// a snapshot yields has internally consistent payload words (the writer
/// stamps `span = arg + 1 = seq + 1`), so a torn copy can never survive
/// validation.
#[test]
fn ring_wrap_never_yields_torn_events() {
    const EVENTS: u64 = 40_000;
    let f = Arc::new(FlightRecorder::new(FlightConfig {
        capacity: 8,
        session_shards: 2,
    }));
    let done = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..2u32)
        .map(|sid| {
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                let shard = f.session_shard(u64::from(sid));
                for j in 0..EVENTS {
                    // Payload words are all derived from j: a torn event
                    // (words from two different writes) breaks the
                    // relation and the assertions below catch it.
                    f.record(
                        shard,
                        SpanId(j + 1),
                        FlightStage::Apply,
                        j % 2 == 0,
                        FanKind::Engine,
                        sid,
                        j,
                        j,
                    );
                }
            })
        })
        .collect();

    let reader = {
        let f = Arc::clone(&f);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut seen = 0u64;
            while !done.load(Ordering::Relaxed) {
                let snap = f.snapshot();
                for evs in &snap.shards[1..] {
                    assert!(evs.len() <= 8, "a shard can never exceed capacity");
                    for e in evs {
                        assert_eq!(e.seq, e.arg, "seq/arg torn: {e:?}");
                        assert_eq!(e.ts_ns, e.arg, "ts/arg torn: {e:?}");
                        assert_eq!(e.span.0, e.arg + 1, "span/arg torn: {e:?}");
                        assert_eq!(e.begin, e.arg % 2 == 0, "meta/arg torn: {e:?}");
                        seen += 1;
                    }
                    for w in evs.windows(2) {
                        assert!(w[0].seq < w[1].seq);
                    }
                }
            }
            seen
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let seen = reader.join().unwrap();
    assert!(seen > 0, "the reader must observe events while wrapping");

    let snap = f.snapshot();
    for (shard, evs) in snap.shards.iter().enumerate().skip(1) {
        assert_eq!(evs.len(), 8, "shard {shard}: full ring after the storm");
        assert_eq!(snap.dropped[shard], EVENTS - 8);
        assert_eq!(evs.last().unwrap().arg, EVENTS - 1);
    }
}

/// End-to-end: a served stream leaves a complete causal record. One span
/// per admitted update; each span's admit umbrella opens and closes on
/// the service shard; every session is covered exactly once per span —
/// by its own fanout pair on the engine/shared paths, or by the single
/// aggregate deferred record (whose close arg counts the sessions that
/// took the label-safe fast path); shutdown mints flush spans, one per
/// session.
#[test]
fn served_stream_leaves_complete_span_record() {
    let (g, stream) = testing::random_workload(19, 24, 2, 1, 40, 60, 0.3);
    let mut svc = CsmService::new(
        g.clone(),
        ServiceConfig {
            queue_capacity: 1024,
            policy: Backpressure::Block,
            shared_index: true,
            flight_capacity: 4096,
        },
    )
    .unwrap();
    let tenants: Vec<(QueryGraph, AlgoKind, &str)> = vec![
        (triangle(), AlgoKind::GraphFlow, "triangles"),
        (path3(0, 1, 0), AlgoKind::Symbi, "wedge"),
        (triangle(), AlgoKind::TurboFlux, "triangles-dup"),
    ];
    for (q, kind, label) in &tenants {
        svc.add_session(
            SessionSpec::new(q.clone(), ParaCosmConfig::sequential()).with_label(*label),
            Box::new(kind.build(&g, q)),
            Box::new(NoopObserver),
        )
        .unwrap();
    }
    for &u in stream.updates() {
        svc.submit(u).unwrap();
    }
    svc.drain().unwrap();

    let flight = Arc::clone(svc.flight());
    let n = stream.len() as u64;
    assert_eq!(
        flight.spans_minted(),
        n,
        "one span per admitted update before shutdown"
    );
    let snap = flight.snapshot();
    assert_shards_coherent(&snap);
    assert!(snap.dropped.iter().all(|&d| d == 0), "capacity fits all");

    for span in (1..=n).map(SpanId) {
        let path = snap.span_path(span);
        assert!(!path.is_empty(), "span {span:?} left no record");
        // The admit umbrella brackets the whole span path.
        let admit_open = path
            .iter()
            .find(|e| e.stage == FlightStage::Admit && e.begin)
            .unwrap_or_else(|| panic!("span {span:?}: no admit begin"));
        let admit_close = path
            .iter()
            .find(|e| e.stage == FlightStage::Admit && !e.begin)
            .unwrap_or_else(|| panic!("span {span:?}: no admit end"));
        assert!(admit_open.ts_ns <= admit_close.ts_ns);
        assert_eq!(admit_open.arg, span.0 - 1, "admit arg is the update index");
        // Every stage opened within the span also closed.
        for e in &path {
            if e.begin {
                assert!(
                    path.iter().any(|c| !c.begin
                        && c.stage == e.stage
                        && c.session == e.session
                        && c.ts_ns >= e.ts_ns),
                    "span {span:?}: {} opened for session {} but never closed",
                    e.stage.name(),
                    e.session
                );
            }
        }
        // Every session's fan-out is accounted for exactly once per
        // update: either its own per-session pair (engine/shared paths)
        // or a share of the single aggregate deferred record, whose
        // close carries the deferred-session count.
        let mut metered = 0u64;
        for sid in 0..tenants.len() as u32 {
            let opens = path
                .iter()
                .filter(|e| e.stage == FlightStage::Fanout && e.session == sid && e.begin)
                .count();
            let closes = path
                .iter()
                .filter(|e| e.stage == FlightStage::Fanout && e.session == sid && !e.begin)
                .count();
            assert_eq!(opens, closes, "span {span:?}: session {sid} fanout pair");
            assert!(opens <= 1, "span {span:?}: session {sid} fanned out twice");
            metered += opens as u64;
        }
        let agg_opens = path
            .iter()
            .filter(|e| e.stage == FlightStage::Fanout && e.session == SESSION_AGGREGATE && e.begin)
            .count();
        assert!(
            agg_opens <= 1,
            "span {span:?}: one aggregate record at most"
        );
        let deferred: u64 = path
            .iter()
            .filter(|e| {
                e.stage == FlightStage::Fanout && e.session == SESSION_AGGREGATE && !e.begin
            })
            .map(|e| {
                assert_eq!(e.kind, FanKind::Deferred);
                e.arg
            })
            .sum();
        assert_eq!(
            metered + deferred,
            tenants.len() as u64,
            "span {span:?}: per-session pairs + aggregate deferred count \
             must cover every session exactly once"
        );
    }

    // The shared-index duplicate must have produced at least one
    // hit-kind fanout close somewhere in the record.
    let any_hit = snap
        .shards
        .iter()
        .flatten()
        .any(|e| e.stage == FlightStage::Fanout && !e.begin && e.kind == FanKind::SharedHit);
    assert!(any_hit, "duplicate query must absorb at least one delta");

    let report = svc.shutdown().unwrap();
    assert_eq!(report.processed, n);
    // Shutdown minted one flush span per session, each a closed pair.
    assert_eq!(flight.spans_minted(), n + tenants.len() as u64);
    let snap = flight.snapshot();
    let flushes: Vec<&FlightEvent> = snap
        .shards
        .iter()
        .flatten()
        .filter(|e| e.stage == FlightStage::Flush)
        .collect();
    assert_eq!(flushes.len(), 2 * tenants.len());
    assert!(flushes.iter().all(|e| e.span.0 > n));
    assert_eq!(
        flushes.iter().filter(|e| e.begin).count(),
        tenants.len(),
        "one flush open per session"
    );

    // The whole record exports as structurally balanced Perfetto JSON
    // with one named track per session plus the service track.
    let json = flight.perfetto_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    for sid in 0..tenants.len() {
        assert!(json.contains(&format!("session-{sid}")));
    }
    assert!(json.contains("\"service\""));
    assert!(json.contains("\"name\":\"admit\""));
    assert!(json.contains("\"name\":\"fanout\""));
}

/// The always-on default is only tenable if recording one span edge
/// costs on the order of nanoseconds. This prints the measured cost
/// (EXPERIMENTS.md quotes it) and asserts a generous ceiling: an order
/// of magnitude above the ~100 ns target, so CI noise cannot flake it
/// while a lock or allocation sneaking into the path still fails.
#[test]
fn hot_path_record_cost_is_nanoscale() {
    const N: u64 = 200_000;
    let f = FlightRecorder::new(FlightConfig::default());
    let span = f.begin_span();
    // Warm the ring (first wrap touches every slot).
    for i in 0..4096u64 {
        f.begin(0, span, FlightStage::Apply, i);
    }
    let t0 = Instant::now();
    for i in 0..N {
        f.begin(0, span, FlightStage::Apply, i);
    }
    let per_event = t0.elapsed().as_nanos() as f64 / N as f64;
    println!("flight_record_hot_path: {per_event:.1} ns/event over {N} events");
    assert!(
        per_event < 1000.0,
        "span-record cost {per_event:.1} ns/event — the always-on default \
         assumes order-100ns; something slow entered the hot path"
    );
}
