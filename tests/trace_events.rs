//! Trace correctness: a real 2-thread inner-executor run at
//! `TraceLevel::Full`, with the drained event log checked for
//! well-formedness (pop/complete pairing per worker shard, split events
//! bounded by the split counter, monotone timestamps per shard) and for
//! agreement with the `RunStats` the engine reports through its ordinary
//! accounting. Also covers the classifier-consistency invariant after a
//! batched `process_stream` run and the exporter surfaces.

use paracosm::algos::AlgoKind;
use paracosm::core::{Counter, EventKind, ParaCosm, ParaCosmConfig, TraceLevel};
use paracosm::graph::{
    DataGraph, ELabel, EdgeUpdate, QueryGraph, Update, UpdateStream, VLabel, VertexId,
};

fn triangle_query() -> QueryGraph {
    let mut q = QueryGraph::new();
    let u: Vec<_> = (0..3).map(|_| q.add_vertex(VLabel(0))).collect();
    q.add_edge(u[0], u[1], ELabel(0)).unwrap();
    q.add_edge(u[1], u[2], ELabel(0)).unwrap();
    q.add_edge(u[0], u[2], ELabel(0)).unwrap();
    q
}

/// Single-label ring + chords: every streamed chord closes triangles, so
/// the inner executor gets real multi-seed work on every update.
fn dense_setup() -> (DataGraph, UpdateStream) {
    let n = 24u32;
    let mut g = DataGraph::new();
    for _ in 0..n {
        g.add_vertex(VLabel(0));
    }
    let mut ring = Vec::new();
    let mut chords = Vec::new();
    for i in 0..n {
        ring.push((i, (i + 1) % n));
        chords.push((i, (i + 2) % n));
    }
    for &(a, b) in &ring {
        g.insert_edge(VertexId(a), VertexId(b), ELabel(0)).unwrap();
    }
    let stream: UpdateStream = chords
        .iter()
        .map(|&(a, b)| Update::InsertEdge(EdgeUpdate::new(VertexId(a), VertexId(b), ELabel(0))))
        .collect();
    (g, stream)
}

fn two_thread_inner_only() -> ParaCosmConfig {
    // Inner-update executor only: the per-update stream path exercises the
    // worker shards without the batch executor's bulk phases.
    let mut cfg = ParaCosmConfig::parallel(2);
    cfg.inter_update = false;
    cfg
}

#[test]
fn two_thread_event_log_is_well_formed() {
    let (g, stream) = dense_setup();
    let q = triangle_query();
    let algo = AlgoKind::GraphFlow.build(&g, &q);
    let cfg = two_thread_inner_only().tracing(TraceLevel::Full);
    let mut e = ParaCosm::new(g, q, algo, cfg);
    let out = e.process_stream(&stream).unwrap();
    assert!(out.positives > 0, "setup must produce matches");

    let snap = e.tracer().metrics();
    let shards = e.tracer().drain_events();
    assert_eq!(shards.len(), 3, "orchestrator + 2 worker shards");
    assert!(
        e.tracer().dropped_events().iter().all(|&d| d == 0),
        "ring capacity must hold this run"
    );

    let mut pops = 0u64;
    let mut dones = 0u64;
    let mut splits = 0u64;
    for (shard, evs) in shards.iter().enumerate() {
        let mut last_ts = 0u64;
        let mut open_pop = false;
        for ev in evs {
            assert!(
                ev.ts_ns >= last_ts,
                "shard {shard}: timestamps must be monotone"
            );
            last_ts = ev.ts_ns;
            match ev.kind {
                EventKind::TaskPop => {
                    assert!(!open_pop, "shard {shard}: pop while a task is open");
                    open_pop = true;
                    pops += 1;
                }
                EventKind::TaskDone => {
                    assert!(open_pop, "shard {shard}: done without a matching pop");
                    open_pop = false;
                    dones += 1;
                }
                EventKind::Split => splits += 1,
                _ => {}
            }
        }
        assert!(!open_pop, "shard {shard}: dangling pop at end of log");
    }

    // Event log and counter registry agree (no events were dropped).
    assert_eq!(pops, snap.total(Counter::TasksPopped));
    assert_eq!(dones, snap.total(Counter::TasksCompleted));
    assert_eq!(pops, dones, "every popped task must complete");
    assert_eq!(splits, snap.total(Counter::TasksSplit));

    // Registry totals agree with the engine's ordinary RunStats accounting.
    assert_eq!(
        snap.total(Counter::TasksCompleted),
        e.stats().tasks_executed
    );
    assert_eq!(snap.total(Counter::TasksSplit), e.stats().tasks_split);
    assert_eq!(snap.total(Counter::Nodes), e.stats().nodes);
    assert_eq!(snap.total(Counter::Updates), e.stats().updates);
    assert_eq!(snap.total(Counter::MatchesPos), e.stats().positives);
    assert_eq!(snap.total(Counter::MatchesNeg), e.stats().negatives);
    assert_eq!(snap.total(Counter::DeadlineFires), 0);
}

#[test]
fn batched_run_keeps_classifier_consistent() {
    let (g, stream) = dense_setup();
    let q = triangle_query();
    // Duplicate a prefix of the stream so the batch executor sees real
    // structural no-ops alongside safe and unsafe updates.
    let mut updates: Vec<Update> = stream.updates().to_vec();
    let dup: Vec<Update> = updates.iter().take(4).copied().collect();
    updates.extend(dup);
    let stream: UpdateStream = updates.into_iter().collect();

    let algo = AlgoKind::GraphFlow.build(&g, &q);
    let cfg = ParaCosmConfig::parallel(2)
        .with_batch_size(8)
        .tracing(TraceLevel::Counters);
    let mut e = ParaCosm::new(g, q, algo, cfg);
    e.process_stream(&stream).unwrap();

    let c = &e.stats().classifier;
    assert!(c.is_consistent(), "stage counts must add up: {c:?}");
    assert_eq!(
        c.total,
        e.stats().updates,
        "every update gets exactly one verdict in a batched run"
    );
    assert!(c.noops >= 4, "duplicated prefix must surface as no-ops");

    let snap = e.tracer().metrics();
    assert_eq!(
        snap.total(Counter::ClassLabelSafe)
            + snap.total(Counter::ClassDegreeSafe)
            + snap.total(Counter::ClassAdsSafe)
            + snap.total(Counter::ClassUnsafe)
            + snap.total(Counter::ClassNoop),
        c.total,
        "registry mirrors ClassifierStats"
    );
    assert_eq!(snap.total(Counter::Updates), e.stats().updates);
}

#[test]
fn exporters_emit_loadable_output() {
    let (g, stream) = dense_setup();
    let q = triangle_query();
    let algo = AlgoKind::GraphFlow.build(&g, &q);
    let cfg = ParaCosmConfig::parallel(2)
        .with_batch_size(8)
        .tracing(TraceLevel::Full)
        .with_slow_k(3);
    let mut e = ParaCosm::new(g, q, algo, cfg);
    let out = e.process_stream(&stream).unwrap();

    let trace = e.tracer().perfetto_json();
    assert!(trace.contains("\"traceEvents\""));
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    assert_eq!(trace.matches('[').count(), trace.matches(']').count());

    let prom = e.tracer().prometheus_text();
    assert!(prom.contains("paracosm_updates_total"));
    assert!(prom.contains("shard=\"w1\""));

    let report = e.run_report(Some(out)).to_json();
    for key in [
        "\"schema_version\"",
        "\"outcome\"",
        "\"stats\"",
        "\"classifier\"",
        "\"latency\"",
        "\"slowest\"",
        "\"metrics\"",
        "\"per_shard\"",
        "\"dropped_events\"",
    ] {
        assert!(report.contains(key), "report missing {key}");
    }
    assert_eq!(report.matches('{').count(), report.matches('}').count());
    assert!(!e.stats().slowest.is_empty(), "slow-K capture must engage");
    assert!(
        e.stats()
            .slowest
            .windows(2)
            .all(|w| w[0].latency >= w[1].latency),
        "slowest list is latency-descending"
    );
}
