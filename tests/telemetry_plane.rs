//! Live-telemetry-plane integration tests, over real loopback sockets:
//! the HTTP endpoints speak valid HTTP/1.1, `/metrics` is syntactically
//! valid Prometheus text whose windowed counters reconcile exactly with
//! the end-of-run [`ServiceReport`], `/sessions` is schema-stable JSON,
//! and the watchdog flags (and clears) an artificially wedged queue.

#![deny(deprecated)]

use paracosm::algos::testing;
use paracosm::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn triangle() -> QueryGraph {
    let mut q = QueryGraph::new();
    let u: Vec<_> = (0..3).map(|_| q.add_vertex(VLabel(0))).collect();
    q.add_edge(u[0], u[1], ELabel(0)).unwrap();
    q.add_edge(u[1], u[2], ELabel(0)).unwrap();
    q.add_edge(u[0], u[2], ELabel(0)).unwrap();
    q
}

/// Blocking HTTP/1.1 GET (or arbitrary-method request): returns
/// (status code, body).
fn http_request(addr: SocketAddr, method: &str, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("endpoint reachable");
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {resp:?}"));
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    http_request(addr, "GET", path)
}

/// Prometheus text-format line check: `metric_name{labels} value` or
/// `metric_name value`, with `# HELP`/`# TYPE` comments allowed.
fn assert_prometheus_syntax(body: &str) {
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("metric line has no value separator: {line:?}");
        });
        assert!(
            value.parse::<f64>().is_ok(),
            "unparsable sample value in {line:?}"
        );
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in {line:?}"
        );
        if name_end < series.len() {
            assert!(series.ends_with('}'), "unterminated label set: {line:?}");
            let labels = &series[name_end + 1..series.len() - 1];
            for pair in labels.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .unwrap_or_else(|| panic!("label without '=' in {line:?}"));
                assert!(
                    k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                    "invalid label name in {line:?}"
                );
                assert!(
                    v.starts_with('"') && v.ends_with('"'),
                    "unquoted label value in {line:?}"
                );
            }
        }
    }
}

/// The numeric value of the first sample whose series matches all given
/// fragments.
fn sample(body: &str, name: &str, fragments: &[&str]) -> f64 {
    body.lines()
        .find(|l| {
            !l.starts_with('#') && l.starts_with(name) && fragments.iter().all(|f| l.contains(f))
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no sample for {name} {fragments:?}"))
}

/// Extract `"key":<number>` from the flat JSON the endpoint emits.
fn json_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("missing JSON key {key:?}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric JSON value for {key:?}"))
}

/// Wide-epoch telemetry config: nothing rotates out of the window during
/// the test, so windowed counters cover the whole run.
fn wide_window(stall: Duration) -> TelemetryConfig {
    TelemetryConfig::new("127.0.0.1:0")
        .with_window(WindowConfig {
            epoch_width: Duration::from_secs(3600),
            num_epochs: 2,
        })
        .with_stall_deadline(stall)
}

/// The acceptance criterion: a live `/metrics` scrape returns per-session
/// windowed quantiles and queue gauges whose counters reconcile exactly
/// (and quantiles within bucket error) with the shutdown report.
#[test]
fn scrape_endpoints_reconcile_with_service_report() {
    let (g, stream) = testing::random_workload(23, 24, 1, 1, 40, 200, 0.3);
    let mut svc = CsmService::new(g.clone(), ServiceConfig::default()).unwrap();
    let mut cfg = ParaCosmConfig::sequential();
    cfg.track_latency = true;
    let algo = Box::new(AlgoKind::Symbi.build(&g, &triangle()));
    svc.add_session(
        SessionSpec::new(triangle(), cfg).with_label("tri\"angles"),
        algo,
        Box::new(NoopObserver),
    )
    .unwrap();
    let t = svc
        .start_telemetry(wide_window(Duration::from_secs(60)))
        .unwrap();
    let addr = t.local_addr();

    for &u in stream.updates() {
        svc.submit(u).unwrap();
    }
    svc.drain().unwrap();

    // Health and readiness while live and idle.
    assert_eq!(http_get(addr, "/healthz"), (200, "ok\n".to_string()));
    assert_eq!(http_get(addr, "/readyz").0, 200);
    assert_eq!(http_get(addr, "/nope").0, 404);
    assert_eq!(http_request(addr, "POST", "/metrics").0, 405);

    // /metrics: valid exposition syntax, expected families present.
    let (code, metrics) = http_get(addr, "/metrics");
    assert_eq!(code, 200);
    assert_prometheus_syntax(&metrics);
    for family in [
        "paracosm_up",
        "paracosm_queue_depth",
        "paracosm_queue_capacity",
        "paracosm_admitted_total",
        "paracosm_processed_total",
        "paracosm_watchdog_stalls_total",
        "paracosm_session_updates_total",
        "paracosm_session_window_latency_seconds",
    ] {
        assert!(metrics.contains(family), "missing family {family}");
    }
    // Label values are escaped (the session label contains a quote).
    assert!(metrics.contains("label=\"tri\\\"angles\""));

    // /sessions: schema-stable JSON.
    let (code, sessions) = http_get(addr, "/sessions");
    assert_eq!(code, 200);
    assert_eq!(json_u64(&sessions, "schema_version"), 1);
    assert!(sessions.contains("\"sessions\":["));
    assert!(sessions.contains("\"diagnostics\":["));
    assert!(sessions.contains("\"level\":\"full\""));
    let json_updates = json_u64(&sessions, "updates");

    // Scraped values to reconcile after shutdown.
    let m_processed = sample(&metrics, "paracosm_processed_total", &[]) as u64;
    let m_admitted = sample(&metrics, "paracosm_admitted_total", &[]) as u64;
    let m_noops = sample(&metrics, "paracosm_noops_total", &[]) as u64;
    let m_stalls = sample(&metrics, "paracosm_watchdog_stalls_total", &[]) as u64;
    let m_updates = sample(&metrics, "paracosm_session_updates_total", &[]) as u64;
    let m_pos = sample(&metrics, "paracosm_session_delta_pos_total", &[]) as u64;
    let m_neg = sample(&metrics, "paracosm_session_delta_neg_total", &[]) as u64;
    let m_win_updates = sample(&metrics, "paracosm_session_window_updates", &[]) as u64;
    let m_p50 = sample(
        &metrics,
        "paracosm_session_window_latency_seconds",
        &["quantile=\"0.5\""],
    );
    let m_p99 = sample(
        &metrics,
        "paracosm_session_window_latency_seconds",
        &["quantile=\"0.99\""],
    );
    let m_p999 = sample(
        &metrics,
        "paracosm_session_window_latency_seconds",
        &["quantile=\"0.999\""],
    );
    let m_depth_cap = sample(&metrics, "paracosm_queue_capacity", &[]) as usize;

    let report = svc.shutdown().unwrap();

    // Exact counter reconciliation: everything was drained before the
    // scrape, so live totals equal final totals.
    assert_eq!(m_processed, report.processed);
    assert_eq!(m_admitted, report.admitted);
    assert_eq!(m_noops, report.noops);
    assert_eq!(m_stalls, report.stalls);
    assert_eq!(m_stalls, 0);
    assert_eq!(m_depth_cap, report.queue_capacity);
    let stats = &report.sessions[0].stats;
    assert_eq!(m_updates, stats.updates);
    assert_eq!(m_pos, stats.positives);
    assert_eq!(m_neg, stats.negatives);
    assert_eq!(json_updates, stats.updates);
    // Wide epochs: the window never rotated, so it covers the lifetime.
    assert_eq!(m_win_updates, stats.updates);

    // Quantile reconciliation within bucket error: both sides bucket with
    // 4 significant bits (~7 % relative width).
    for (got, p) in [(m_p50, 50.0), (m_p99, 99.0), (m_p999, 99.9)] {
        let want = stats.latency.percentile(p).as_secs_f64();
        assert!(
            (got - want).abs() <= want * 0.08 + 1e-9,
            "p{p}: scraped {got}, report {want}"
        );
    }
}

/// Shared-index observability: `/metrics` exposes the index's lifetime
/// counters and per-session reuse totals, `/sessions` mirrors them in
/// JSON, and every number reconciles exactly with the shutdown
/// [`ServiceReport`].
#[test]
fn shared_index_metrics_reconcile_with_report() {
    let (g, stream) = testing::random_workload(23, 24, 1, 1, 40, 200, 0.3);
    let mut svc = CsmService::new(g.clone(), ServiceConfig::default()).unwrap();
    // Two sessions over the same pattern under different algorithms: the
    // second absorbs cached deltas, so the hit counter actually moves.
    for (kind, label) in [(AlgoKind::GraphFlow, "a"), (AlgoKind::Symbi, "b")] {
        svc.add_session(
            SessionSpec::new(triangle(), ParaCosmConfig::sequential()).with_label(label),
            Box::new(kind.build(&g, &triangle())),
            Box::new(NoopObserver),
        )
        .unwrap();
    }
    let t = svc
        .start_telemetry(wide_window(Duration::from_secs(60)))
        .unwrap();
    let addr = t.local_addr();

    for &u in stream.updates() {
        svc.submit(u).unwrap();
    }
    svc.drain().unwrap();

    let (code, metrics) = http_get(addr, "/metrics");
    assert_eq!(code, 200);
    assert_prometheus_syntax(&metrics);
    let m_subpats = sample(&metrics, "paracosm_shared_subpatterns", &[]) as u64;
    let m_hits = sample(&metrics, "paracosm_shared_hits_total", &[]) as u64;
    let m_misses = sample(&metrics, "paracosm_shared_misses_total", &[]) as u64;
    let m_reuses_b = sample(
        &metrics,
        "paracosm_session_shared_reuses_total",
        &["label=\"b\""],
    ) as u64;

    let (code, sessions) = http_get(addr, "/sessions");
    assert_eq!(code, 200);
    assert!(sessions.contains("\"shared\":{\"subpatterns\":"));
    let j_hits = json_u64(&sessions, "hits");
    let j_misses = json_u64(&sessions, "misses");

    let report = svc.shutdown().unwrap();
    let sh = report.shared.expect("index on by default");
    assert!(sh.hits > 0, "duplicate-query session must produce hits");
    assert_eq!(m_subpats, sh.subpatterns);
    assert_eq!(m_hits, sh.hits);
    assert_eq!(m_misses, sh.misses);
    assert_eq!(j_hits, sh.hits);
    assert_eq!(j_misses, sh.misses);
    let dims_b = report.sessions[1].session.as_ref().unwrap();
    assert_eq!(dims_b.label, "b");
    assert_eq!(m_reuses_b, dims_b.shared_reuses);
    let reuses: u64 = report
        .sessions
        .iter()
        .map(|s| s.session.as_ref().unwrap().shared_reuses)
        .sum();
    assert_eq!(sh.hits, reuses, "index hits must equal Σ session reuses");
}

/// Ghost-session regression: removing a session mid-run tears down its
/// window ring and index subscription, so later `/metrics` and
/// `/sessions` scrapes never mention it and the survivors keep serving.
#[test]
fn removed_session_leaves_no_ghosts_in_scrapes() {
    let (g, stream) = testing::random_workload(31, 24, 1, 1, 40, 60, 0.3);
    let mut svc = CsmService::new(g.clone(), ServiceConfig::default()).unwrap();
    let add = |svc: &mut CsmService, label: &str| {
        svc.add_session(
            SessionSpec::new(triangle(), ParaCosmConfig::sequential()).with_label(label),
            Box::new(AlgoKind::GraphFlow.build(&g, &triangle())),
            Box::new(NoopObserver),
        )
        .unwrap()
    };
    add(&mut svc, "stay");
    let ghost = add(&mut svc, "ghost");
    let t = svc
        .start_telemetry(wide_window(Duration::from_secs(60)))
        .unwrap();
    let addr = t.local_addr();

    let half = stream.len() / 2;
    for &u in &stream.updates()[..half] {
        svc.submit(u).unwrap();
    }
    svc.drain().unwrap();
    let (_, sessions) = http_get(addr, "/sessions");
    assert!(sessions.contains("\"label\":\"ghost\""));

    svc.remove_session(ghost).unwrap();
    for &u in &stream.updates()[half..] {
        svc.submit(u).unwrap();
    }
    svc.drain().unwrap();

    let (code, sessions) = http_get(addr, "/sessions");
    assert_eq!(code, 200);
    assert!(
        !sessions.contains("\"label\":\"ghost\""),
        "/sessions still reports the removed session: {sessions}"
    );
    assert!(sessions.contains("\"label\":\"stay\""));
    let (code, metrics) = http_get(addr, "/metrics");
    assert_eq!(code, 200);
    assert_prometheus_syntax(&metrics);
    assert!(
        !metrics.contains("label=\"ghost\""),
        "/metrics still exposes series for the removed session"
    );
    let m_updates = sample(
        &metrics,
        "paracosm_session_updates_total",
        &["label=\"stay\""],
    ) as u64;

    let report = svc.shutdown().unwrap();
    assert_eq!(report.sessions.len(), 1);
    assert_eq!(report.sessions[0].stats.updates, stream.len() as u64);
    assert_eq!(m_updates, stream.len() as u64);
}

/// The watchdog state machine: a wedged admission queue (admitted updates,
/// owner not draining) flips `/healthz` to 503 and records a diagnostic;
/// draining recovers to 200. `ServiceReport` carries the stall count.
#[test]
fn watchdog_flags_wedged_queue_then_recovers() {
    let (g, stream) = testing::random_workload(7, 16, 1, 1, 20, 8, 0.2);
    let mut svc = CsmService::new(
        g.clone(),
        ServiceConfig {
            queue_capacity: 64,
            policy: Backpressure::Reject,
            shared_index: true,
            flight_capacity: 1024,
        },
    )
    .unwrap();
    let algo = Box::new(AlgoKind::GraphFlow.build(&g, &triangle()));
    svc.add_session(
        SessionSpec::new(triangle(), ParaCosmConfig::sequential()),
        algo,
        Box::new(NoopObserver),
    )
    .unwrap();
    let t = svc
        .start_telemetry(wide_window(Duration::from_millis(50)))
        .unwrap();
    let addr = t.local_addr();

    // Wedge: admit updates and never drain.
    for &u in stream.updates() {
        svc.submit(u).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if http_get(addr, "/healthz").0 == 503 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watchdog never flagged the wedge"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!t.healthy());
    assert!(t.stalls() >= 1);
    assert_eq!(http_get(addr, "/readyz").0, 503);
    let diags = t.diagnostics();
    assert!(diags.iter().any(|d| d.kind == StallKind::WedgedQueue));
    assert!(diags[0].describe().contains("wedged-queue"));
    let (_, sessions) = http_get(addr, "/sessions");
    assert!(sessions.contains("\"kind\":\"wedged-queue\""));

    // The stall also produced a forensic dossier on /debug/stalls. No
    // update was ever processed, so the implicated span is NONE and the
    // path is empty — but the dossier itself must exist and carry the
    // diagnostic.
    let (code, stalls) = http_get(addr, "/debug/stalls");
    assert_eq!(code, 200);
    assert_eq!(json_u64(&stalls, "schema_version"), 1);
    assert!(json_u64(&stalls, "stalls_total") >= 1);
    assert!(stalls.contains("\"healthy\":false"));
    assert!(stalls.contains("\"kind\":\"wedged-queue\""));
    assert!(stalls.contains("\"sessions\":[{\"id\":"));
    let dossiers = t.dossiers();
    assert!(dossiers
        .iter()
        .any(|d| d.diagnostic.kind == StallKind::WedgedQueue));

    // /debug/flight always answers, even with nothing recorded yet.
    let (code, flight) = http_get(addr, "/debug/flight");
    assert_eq!(code, 200);
    assert_eq!(json_u64(&flight, "schema_version"), 1);
    assert_eq!(json_u64(&flight, "capacity"), 1024);
    assert_eq!(json_u64(&flight, "spans_minted"), 0);
    assert!(flight.contains("\"shards\":[{\"shard\":0,"));

    // Recovery: drain and wait for the flag to clear.
    svc.drain().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if http_get(addr, "/healthz").0 == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "stall flag never cleared");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(t.healthy());

    let stalls = t.stalls();
    let report = svc.shutdown().unwrap();
    assert_eq!(report.stalls, stalls);
    assert!(report.stalls >= 1);
    assert!(report.to_json().contains(&format!("\"stalls\":{stalls}")));
}

/// Observer that naps well past the stall deadline on its first few
/// updates — the service's owner thread wedges *inside* an update, which
/// is exactly the `StuckUpdate` shape the watchdog forensics target.
struct Molasses {
    naps: u32,
    nap: Duration,
}

impl StreamObserver for Molasses {
    fn on_update(&mut self, _obs: &UpdateObservation) {
        if self.naps > 0 {
            self.naps -= 1;
            std::thread::sleep(self.nap);
        }
    }
}

/// A forced `StuckUpdate` stall produces a dossier containing the
/// offending update's complete span path: the watchdog resolves the
/// in-flight span, and `/debug/stalls` names the stuck update, its span,
/// and the stages it got through — ending at the open `fanout` of the
/// session whose observer is asleep.
#[test]
fn stuck_update_dossier_names_span_and_stage_path() {
    let (g, stream) = testing::random_workload(13, 16, 1, 1, 20, 4, 0.2);
    let mut svc = CsmService::new(g.clone(), ServiceConfig::default()).unwrap();
    svc.add_session(
        SessionSpec::new(triangle(), ParaCosmConfig::sequential()).with_label("slowpoke"),
        Box::new(AlgoKind::GraphFlow.build(&g, &triangle())),
        Box::new(Molasses {
            naps: 1,
            nap: Duration::from_millis(600),
        }),
    )
    .unwrap();
    let t = svc
        .start_telemetry(wide_window(Duration::from_millis(40)))
        .unwrap();
    let addr = t.local_addr();

    for &u in stream.updates() {
        svc.submit(u).unwrap();
    }
    // drain() blocks in update #0 while the observer naps; the watchdog
    // flags the stuck update and captures the dossier mid-flight.
    svc.drain().unwrap();

    assert!(t.stalls() >= 1, "the watchdog must have caught the nap");
    let dossiers = t.dossiers();
    let d = dossiers
        .iter()
        .find(|d| d.diagnostic.kind == StallKind::StuckUpdate)
        .expect("a stuck-update dossier");
    assert_eq!(d.diagnostic.update_index, Some(0));
    assert!(d.span.is_some(), "the in-flight span must be resolved");
    assert!(!d.path.is_empty(), "the span path must be captured");
    // The path walks the pipeline: the admit umbrella opened (never
    // closed at capture time), and the slow session's fanout was open.
    let admit_open = d
        .path
        .iter()
        .find(|e| e.stage == FlightStage::Admit && e.begin)
        .expect("admit begin in the dossier path");
    assert_eq!(admit_open.span, d.span);
    assert_eq!(admit_open.arg, 0, "admit arg is the stuck update's index");
    assert!(
        !d.path
            .iter()
            .any(|e| e.stage == FlightStage::Admit && !e.begin),
        "the stuck update cannot have closed its admit span yet"
    );
    assert!(
        d.path
            .iter()
            .any(|e| e.stage == FlightStage::Fanout && e.begin),
        "the stuck session's fanout must be open in the path"
    );
    assert!(d.sessions.iter().any(|(_, label, _)| label == "slowpoke"));

    // The HTTP rendering of the same dossier.
    let (code, stalls) = http_get(addr, "/debug/stalls");
    assert_eq!(code, 200);
    assert_eq!(json_u64(&stalls, "schema_version"), 1);
    assert!(stalls.contains("\"kind\":\"stuck-update\""));
    assert!(stalls.contains("\"update_index\":0"));
    assert!(stalls.contains("\"stage\":\"admit\""));
    assert!(stalls.contains("\"phase\":\"begin\""));
    assert!(stalls.contains("\"label\":\"slowpoke\""));

    // /debug/flight now reflects the full run: every submitted update
    // minted a span, and the stuck one eventually completed.
    let (code, flight) = http_get(addr, "/debug/flight");
    assert_eq!(code, 200);
    assert_eq!(json_u64(&flight, "spans_minted"), stream.len() as u64);
    assert_eq!(json_u64(&flight, "inflight_span"), 0);
    assert_eq!(json_u64(&flight, "last_done_span"), stream.len() as u64);

    // Recovery: the nap is over, progress resumed, health returns.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if http_get(addr, "/healthz").0 == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "stall flag never cleared");
        std::thread::sleep(Duration::from_millis(20));
    }
    let report = svc.shutdown().unwrap();
    assert!(report.stalls >= 1);
}

/// Config plumbing: bad addresses surface as `ConfigInvalid` naming
/// `telemetry_addr`, double starts are refused, and the endpoint dies
/// with the service (no leaked listener after shutdown).
#[test]
fn telemetry_lifecycle_and_config_errors() {
    let (g, _) = testing::random_workload(3, 8, 1, 1, 10, 4, 0.2);
    let mut svc = CsmService::new(g, ServiceConfig::default()).unwrap();
    match svc.start_telemetry(TelemetryConfig::new("definitely:not:an:addr")) {
        Err(CsmError::ConfigInvalid { field, .. }) => assert_eq!(field, "telemetry_addr"),
        other => panic!("expected ConfigInvalid, got {other:?}"),
    }
    let t = svc
        .start_telemetry(wide_window(Duration::from_secs(60)))
        .unwrap();
    let addr = t.local_addr();
    assert_eq!(http_get(addr, "/healthz").0, 200);
    match svc.start_telemetry(wide_window(Duration::from_secs(60))) {
        Err(CsmError::ConfigInvalid { field, .. }) => assert_eq!(field, "telemetry_addr"),
        other => panic!("expected ConfigInvalid on double start, got {other:?}"),
    }
    svc.shutdown().unwrap();
    // The listener thread is joined by shutdown; connecting now fails (or
    // is refused before a response) — give the OS a moment to reap.
    std::thread::sleep(Duration::from_millis(50));
    let alive = TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_ok();
    assert!(!alive, "telemetry listener survived shutdown");
}
