//! API-surface contracts: builder-produced configurations are always
//! valid, the [`CsmError::ConfigInvalid`] taxonomy names the offending
//! field, and [`ParaCosm::run_stream`] is a drop-in replacement for the
//! deprecated `process_stream_observed` wrapper.

// The only sanctioned use of the deprecated wrapper is the scoped
// differential assertion below; everything else in test builds is held to
// the non-deprecated surface.
#![deny(deprecated)]

use paracosm::algos::testing;
use paracosm::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

/// Arbitrary chains of the public builder methods, starting from either
/// preset constructor. Zero encodes "this builder not called".
fn builder_config() -> impl Strategy<Value = ParaCosmConfig> {
    (
        0usize..9,    // 0 -> sequential(), n -> parallel(n)
        0u64..5_000,  // 0 -> no time limit, ms otherwise
        any::<u64>(), // parity -> collecting()
        0usize..512,  // 0 -> default batch size
        0usize..33,   // 0 -> default slow_k
        0usize..9,    // 0 -> keep preset threads
    )
        .prop_map(|(par, limit, collect, batch, slow_k, threads)| {
            let mut c = match par {
                0 => ParaCosmConfig::sequential(),
                n => ParaCosmConfig::parallel(n),
            };
            if limit > 0 {
                c = c.with_time_limit(Duration::from_millis(limit));
            }
            if collect % 2 == 0 {
                c = c.collecting();
            }
            if batch > 0 {
                c = c.with_batch_size(batch);
            }
            if slow_k > 0 {
                c = c.with_slow_k(slow_k);
            }
            if threads > 0 {
                c = c.with_threads(threads);
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// No chain of builder calls can produce a config that `validate`
    /// rejects: the builders are the blessed path, so they must uphold
    /// the invariants the engine constructors enforce.
    #[test]
    fn builder_configs_always_validate(cfg in builder_config()) {
        prop_assert!(cfg.validate().is_ok(), "builder produced invalid config: {cfg:?}");
        // validated() is the consuming form of the same check.
        prop_assert!(cfg.clone().validated().is_ok());
    }

    /// Every invalid field the taxonomy documents is caught by name when
    /// written directly (bypassing the builders).
    #[test]
    fn raw_zero_fields_are_named_in_errors(which in 0usize..4) {
        let mut cfg = ParaCosmConfig::sequential();
        let field = match which {
            0 => { cfg.num_threads = 0; "num_threads" }
            1 => { cfg.batch_size = 0; "batch_size" }
            2 => { cfg.time_limit = Some(Duration::ZERO); "time_limit" }
            _ => { cfg.seed_task_factor = 0; "seed_task_factor" }
        };
        match cfg.validate() {
            Err(CsmError::ConfigInvalid { field: f, reason }) => {
                prop_assert_eq!(f, field);
                prop_assert!(!reason.is_empty());
            }
            other => prop_assert!(false, "expected ConfigInvalid for {}, got {:?}", field, other),
        }
    }
}

/// `run_stream` with a [`NoopObserver`], `process_stream`, and the
/// deprecated `process_stream_observed` wrapper all produce identical
/// outcomes and identical final statistics over the same workload.
#[test]
fn run_stream_is_a_drop_in_for_the_deprecated_wrapper() {
    for seed in [5u64, 19, 101] {
        let (g, stream) = testing::random_workload(seed, 20, 2, 1, 30, 40, 0.3);
        let Some(q) = testing::random_walk_query(&g, seed ^ 0x5EED, 3) else {
            continue;
        };
        let mk = || {
            ParaCosm::new(
                g.clone(),
                q.clone(),
                AlgoKind::Symbi.build(&g, &q),
                ParaCosmConfig::sequential(),
            )
        };

        let mut plain = mk();
        let a = plain.process_stream(&stream).unwrap();

        let mut observed = mk();
        let mut seen = 0u64;
        struct Count<'a>(&'a mut u64);
        impl StreamObserver for Count<'_> {
            fn on_update(&mut self, _: &UpdateObservation) {
                *self.0 += 1;
            }
        }
        let b = observed.run_stream(&stream, &mut Count(&mut seen)).unwrap();

        let mut legacy = mk();
        #[allow(deprecated)]
        let c = legacy
            .process_stream_observed(&stream, &mut NoopObserver)
            .unwrap();

        assert_eq!((a.positives, a.negatives), (b.positives, b.negatives));
        assert_eq!((a.positives, a.negatives), (c.positives, c.negatives));
        assert_eq!(seen, stream.len() as u64, "observer fires once per update");
        assert_eq!(plain.stats().positives, observed.stats().positives);
        assert_eq!(plain.stats().negatives, legacy.stats().negatives);
        assert!(plain.stats().classifier.is_consistent());
    }
}
