//! Sharded-vs-monolithic differential: a [`CsmService`] over a
//! [`ShardedGraph`] (any shard count, hash or range partitioner) must
//! report per-update ΔM **bit-identical** to the same service over the
//! monolithic [`DataGraph`] — the batched multi-writer drain is an
//! execution strategy, never a semantics change.
//!
//! Streams are seeded and skewed (hub-heavy edge churn plus occasional
//! vertex inserts/deletes), and sessions are chosen so some updates are
//! label-safe for every session (batchable runs) while others force the
//! serial path mid-run — both drain modes and the boundary between them
//! are exercised in every cell.

use paracosm::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The per-update facts that must agree bit-for-bit across backends
/// (latency and span ids are timing/identity, not semantics).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Obs {
    index: u64,
    verdict: Option<Classified>,
    noop: bool,
    positives: u64,
    negatives: u64,
    skipped: bool,
}

#[derive(Clone, Default)]
struct Recorder(Arc<Mutex<Vec<Obs>>>);

impl StreamObserver for Recorder {
    fn on_update(&mut self, o: &UpdateObservation) {
        self.0.lock().unwrap().push(Obs {
            index: o.index,
            verdict: o.verdict,
            noop: o.noop,
            positives: o.positives,
            negatives: o.negatives,
            skipped: o.skipped,
        });
    }
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const NV: u32 = 60;

fn base_graph(seed: u64) -> DataGraph {
    let mut g = DataGraph::new();
    let mut rng = Lcg(seed);
    for i in 0..NV {
        g.add_vertex(VLabel(i % 3));
    }
    for _ in 0..120 {
        let (a, b) = (rng.below(NV as u64) as u32, rng.below(NV as u64) as u32);
        if a != b {
            let _ = g.insert_edge(VertexId(a), VertexId(b), ELabel((a + b) % 2));
        }
    }
    g
}

/// A skewed update stream: most edge churn lands on a small hub set, a
/// sprinkling of vertex inserts/deletes breaks batchable runs, and edge
/// labels split between the session-relevant label 0 and the
/// label-safe-everywhere label 1.
fn skewed_stream(seed: u64, len: usize) -> Vec<Update> {
    let mut rng = Lcg(seed ^ 0x9E3779B97F4A7C15);
    let mut out = Vec::with_capacity(len);
    let mut next_vid = NV;
    for _ in 0..len {
        let roll = rng.below(100);
        let hubs = 8;
        let pick = |rng: &mut Lcg| {
            if rng.below(4) < 3 {
                rng.below(hubs) as u32
            } else {
                rng.below(NV as u64) as u32
            }
        };
        let a = pick(&mut rng);
        let b = pick(&mut rng);
        let e = EdgeUpdate::new(VertexId(a), VertexId(b), ELabel((rng.below(2)) as u32));
        out.push(match roll {
            0..=54 => Update::InsertEdge(e),
            55..=89 => Update::DeleteEdge(e),
            90..=95 => {
                next_vid += 1;
                Update::InsertVertex {
                    id: VertexId(next_vid),
                    label: VLabel(next_vid % 3),
                }
            }
            _ => Update::DeleteVertex {
                id: VertexId(rng.below(NV as u64) as u32),
            },
        });
    }
    out
}

fn triangle_query() -> QueryGraph {
    let mut q = QueryGraph::new();
    let u: Vec<_> = (0..3).map(|i| q.add_vertex(VLabel(i % 3))).collect();
    q.add_edge(u[0], u[1], ELabel(0)).unwrap();
    q.add_edge(u[1], u[2], ELabel(0)).unwrap();
    q.add_edge(u[0], u[2], ELabel(0)).unwrap();
    q
}

fn wedge_query() -> QueryGraph {
    let mut q = QueryGraph::new();
    let a = q.add_vertex(VLabel(0));
    let b = q.add_vertex(VLabel(1));
    let c = q.add_vertex(VLabel(2));
    q.add_edge(a, b, ELabel(0)).unwrap();
    q.add_edge(b, c, ELabel(0)).unwrap();
    q
}

/// Run the full multi-session service over `g`, returning per-session
/// observation logs plus the final `(processed, noops, invalid)` and the
/// sorted final edge set.
#[allow(clippy::type_complexity)]
fn run_service<G: GraphShard>(
    g: G,
    stream: &[Update],
    shared_index: bool,
) -> (Vec<Vec<Obs>>, (u64, u64, u64), Vec<(u32, u32, u32)>) {
    let mut svc = CsmService::new(
        g,
        ServiceConfig {
            shared_index,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut logs = Vec::new();
    for (qi, q) in [triangle_query(), wedge_query()].into_iter().enumerate() {
        let rec = Recorder::default();
        logs.push(Arc::clone(&rec.0));
        let algo = Box::new(AlgoKind::Symbi.build(svc.graph(), &q));
        let spec = SessionSpec::new(q, ParaCosmConfig::sequential()).with_label(format!("s{qi}"));
        svc.add_session(spec, algo, Box::new(rec)).unwrap();
    }
    for &u in stream {
        svc.submit(u).unwrap();
    }
    svc.drain().unwrap();
    let edges: Vec<(u32, u32, u32)> = {
        let g = svc.graph();
        let mut es: Vec<_> = g.edges().map(|(a, b, l)| (a.0, b.0, l.0)).collect();
        es.sort_unstable();
        es
    };
    let report = svc.shutdown().unwrap();
    let logs = logs
        .iter()
        .map(|l| l.lock().unwrap().clone())
        .collect::<Vec<_>>();
    (
        logs,
        (report.processed, report.noops, report.invalid),
        edges,
    )
}

fn differential_cell(shards: usize, partition_by_range: bool, seed: u64, shared_index: bool) {
    let stream = skewed_stream(seed, 400);
    let (ref_logs, ref_counts, ref_edges) = run_service(base_graph(seed), &stream, shared_index);

    let cfg = if partition_by_range {
        ShardConfig::range_even(shards, NV * 2)
    } else {
        ShardConfig::hash(shards)
    };
    let sg = ShardedGraph::from_graph(cfg, &base_graph(seed)).unwrap();
    assert_eq!(sg.num_shards(), shards);
    let (logs, counts, edges) = run_service(sg, &stream, shared_index);

    assert_eq!(counts, ref_counts, "service counters diverged");
    assert_eq!(edges, ref_edges, "final graphs diverged");
    for (s, (log, ref_log)) in logs.iter().zip(&ref_logs).enumerate() {
        assert_eq!(
            log, ref_log,
            "session {s}: per-update \u{394}M diverged (shards={shards}, range={partition_by_range})"
        );
    }
}

#[test]
fn sharded_matches_monolithic_hash_partitioner() {
    for shards in [1, 2, 4, 7] {
        for seed in [1, 42] {
            differential_cell(shards, false, seed, true);
        }
    }
}

#[test]
fn sharded_matches_monolithic_range_partitioner() {
    for shards in [2, 4, 7] {
        differential_cell(shards, true, 7, true);
    }
}

#[test]
fn sharded_matches_monolithic_index_off() {
    differential_cell(4, false, 11, false);
}

/// Pure-ingest batching (no sessions): every edge update is vacuously
/// label-safe, so whole runs flow through `apply_edge_batch` — the final
/// graph and counters must still match the monolithic run exactly.
#[test]
fn sharded_pure_ingest_batches_whole_stream() {
    let stream = skewed_stream(99, 600);
    let run = |g: DataGraph, sharded: bool| {
        if sharded {
            let sg = ShardedGraph::from_graph(ShardConfig::hash(4), &g).unwrap();
            let mut svc = CsmService::new(sg, ServiceConfig::default()).unwrap();
            for &u in &stream {
                svc.submit(u).unwrap();
            }
            svc.drain().unwrap();
            let mut es: Vec<_> = svc
                .graph()
                .edges()
                .map(|(a, b, l)| (a.0, b.0, l.0))
                .collect();
            es.sort_unstable();
            let r = svc.shutdown().unwrap();
            (es, r.processed, r.noops, r.invalid)
        } else {
            let mut svc = CsmService::new(g, ServiceConfig::default()).unwrap();
            for &u in &stream {
                svc.submit(u).unwrap();
            }
            svc.drain().unwrap();
            let mut es: Vec<_> = svc
                .graph()
                .edges()
                .map(|(a, b, l)| (a.0, b.0, l.0))
                .collect();
            es.sort_unstable();
            let r = svc.shutdown().unwrap();
            (es, r.processed, r.noops, r.invalid)
        }
    };
    let reference = run(base_graph(99), false);
    let sharded = run(base_graph(99), true);
    assert_eq!(sharded, reference);
}

/// The degradation ladder must behave identically over a sharded backend:
/// a zero-budget session over a hot stream degrades the same way in both
/// drains (budgeted sessions are never batch-deferred differently — the
/// ladder sees the same enumeration sequence).
#[test]
fn sharded_ladder_parity_with_budget() {
    let stream = skewed_stream(5, 300);
    let run = |sharded: bool| {
        let mk = |g: DataGraph| -> Vec<Obs> {
            let q = triangle_query();
            let rec = Recorder::default();
            let log = Arc::clone(&rec.0);
            if sharded {
                let sg = ShardedGraph::from_graph(ShardConfig::hash(3), &g).unwrap();
                let mut svc = CsmService::new(sg, ServiceConfig::default()).unwrap();
                let algo = Box::new(AlgoKind::Symbi.build(svc.graph(), &q));
                let spec = SessionSpec::new(q, ParaCosmConfig::sequential())
                    .with_budget(Duration::from_secs(3600));
                svc.add_session(spec, algo, Box::new(rec)).unwrap();
                for &u in &stream {
                    svc.submit(u).unwrap();
                }
                svc.drain().unwrap();
                svc.shutdown().unwrap();
            } else {
                let mut svc = CsmService::new(g, ServiceConfig::default()).unwrap();
                let algo = Box::new(AlgoKind::Symbi.build(svc.graph(), &q));
                let spec = SessionSpec::new(q, ParaCosmConfig::sequential())
                    .with_budget(Duration::from_secs(3600));
                svc.add_session(spec, algo, Box::new(rec)).unwrap();
                for &u in &stream {
                    svc.submit(u).unwrap();
                }
                svc.drain().unwrap();
                svc.shutdown().unwrap();
            }
            let out = log.lock().unwrap().clone();
            out
        };
        mk(base_graph(5))
    };
    assert_eq!(run(true), run(false));
}
