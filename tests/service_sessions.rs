//! Serving-layer integration tests: per-session ΔM fidelity against
//! standalone runs, observable backpressure, live session removal,
//! shutdown draining, and the degradation ladder.

use paracosm::algos::testing;
use paracosm::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared-counter observer: lets the test read a session's live ΔM and
/// skip flags from outside the service.
struct Watch {
    delta_m: Arc<AtomicU64>,
    skipped: Arc<AtomicU64>,
}

impl Watch {
    fn new() -> (Watch, Arc<AtomicU64>, Arc<AtomicU64>) {
        let delta_m = Arc::new(AtomicU64::new(0));
        let skipped = Arc::new(AtomicU64::new(0));
        (
            Watch {
                delta_m: Arc::clone(&delta_m),
                skipped: Arc::clone(&skipped),
            },
            delta_m,
            skipped,
        )
    }
}

impl StreamObserver for Watch {
    fn on_update(&mut self, obs: &UpdateObservation) {
        self.delta_m.fetch_add(obs.delta_m(), Ordering::Relaxed);
        if obs.skipped {
            self.skipped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn triangle() -> QueryGraph {
    let mut q = QueryGraph::new();
    let u: Vec<_> = (0..3).map(|_| q.add_vertex(VLabel(0))).collect();
    q.add_edge(u[0], u[1], ELabel(0)).unwrap();
    q.add_edge(u[1], u[2], ELabel(0)).unwrap();
    q.add_edge(u[0], u[2], ELabel(0)).unwrap();
    q
}

fn path3(l0: u32, l1: u32, l2: u32) -> QueryGraph {
    let mut q = QueryGraph::new();
    let a = q.add_vertex(VLabel(l0));
    let b = q.add_vertex(VLabel(l1));
    let c = q.add_vertex(VLabel(l2));
    q.add_edge(a, b, ELabel(0)).unwrap();
    q.add_edge(b, c, ELabel(0)).unwrap();
    q
}

fn dense_workload(seed: u64) -> (DataGraph, UpdateStream) {
    testing::random_workload(seed, 24, 2, 1, 40, 60, 0.3)
}

/// The acceptance criterion: four concurrent sessions — different queries
/// and algorithms over one shared graph — each produce per-session ΔM
/// identical to a standalone single-query engine fed the same stream.
#[test]
fn four_sessions_match_standalone_runs() {
    let (g, stream) = dense_workload(11);
    let tenants: Vec<(QueryGraph, AlgoKind, &str)> = vec![
        (triangle(), AlgoKind::GraphFlow, "triangles"),
        (path3(0, 1, 0), AlgoKind::Symbi, "wedge-010"),
        (path3(1, 0, 1), AlgoKind::TurboFlux, "wedge-101"),
        (path3(0, 0, 1), AlgoKind::NewSP, "path-001"),
    ];

    let mut svc = CsmService::new(g.clone(), ServiceConfig::default()).unwrap();
    let mut watches = Vec::new();
    for (q, kind, label) in &tenants {
        let (watch, delta, _) = Watch::new();
        let id = svc
            .add_session(
                SessionSpec::new(q.clone(), ParaCosmConfig::sequential()).with_label(*label),
                Box::new(kind.build(&g, q)),
                Box::new(watch),
            )
            .unwrap();
        watches.push((id, delta));
    }
    for &u in stream.updates() {
        svc.submit(u).unwrap();
    }
    let report = svc.shutdown().unwrap();
    assert_eq!(report.processed, stream.len() as u64);
    assert_eq!(report.sessions.len(), 4);

    for (i, (q, kind, label)) in tenants.iter().enumerate() {
        let mut solo = ParaCosm::new(
            g.clone(),
            q.clone(),
            kind.build(&g, q),
            ParaCosmConfig::sequential(),
        );
        let solo_out = solo.process_stream(&stream).unwrap();
        let served = &report.sessions[i];
        let dims = served.session.as_ref().unwrap();
        assert_eq!(dims.label, *label);
        assert_eq!(
            served.stats.positives, solo_out.positives,
            "session {label}: positives diverge from standalone"
        );
        assert_eq!(
            served.stats.negatives, solo_out.negatives,
            "session {label}: negatives diverge from standalone"
        );
        assert_eq!(served.stats.updates, stream.len() as u64);
        assert!(
            served.stats.classifier.is_consistent(),
            "session {label}: verdicts must add up"
        );
        let (_, delta) = &watches[i];
        assert_eq!(
            delta.load(Ordering::Relaxed),
            solo_out.positives + solo_out.negatives,
            "session {label}: observer ΔM diverges"
        );
    }
}

/// Shed-oldest backpressure is observable: counters in the final
/// [`ServiceReport`] account for every admitted update, and only the
/// surviving (freshest) updates reach the sessions.
#[test]
fn shed_oldest_policy_is_observable_in_report() {
    let (g, stream) = dense_workload(23);
    let mut svc = CsmService::new(
        g.clone(),
        ServiceConfig {
            queue_capacity: 4,
            policy: Backpressure::ShedOldest,
            shared_index: true,
            flight_capacity: 1024,
        },
    )
    .unwrap();
    svc.add_session(
        SessionSpec::new(triangle(), ParaCosmConfig::sequential()),
        Box::new(AlgoKind::GraphFlow.build(&g, &triangle())),
        Box::new(NoopObserver),
    )
    .unwrap();

    // No draining between submits: everything past the first 4 sheds.
    let sent = 10u64;
    for &u in &stream.updates()[..sent as usize] {
        svc.submit(u).unwrap();
    }
    let report = svc.shutdown().unwrap();
    assert_eq!(report.admitted, sent);
    assert_eq!(report.shed, sent - 4);
    assert_eq!(report.processed, 4);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.sessions[0].stats.updates, 4);
    let json = report.to_json();
    assert!(json.contains("\"policy\":\"shed-oldest\""));
    assert!(json.contains(&format!("\"shed\":{}", sent - 4)));
}

/// Reject backpressure surfaces as `CsmError::Backpressure` to the
/// producer and as a rejected-count in the report; the service keeps
/// serving afterwards.
#[test]
fn reject_policy_is_observable_and_survivable() {
    let (g, stream) = dense_workload(37);
    let mut svc = CsmService::new(
        g.clone(),
        ServiceConfig {
            queue_capacity: 4,
            policy: Backpressure::Reject,
            shared_index: true,
            flight_capacity: 1024,
        },
    )
    .unwrap();
    svc.add_session(
        SessionSpec::new(triangle(), ParaCosmConfig::sequential()),
        Box::new(AlgoKind::GraphFlow.build(&g, &triangle())),
        Box::new(NoopObserver),
    )
    .unwrap();

    let mut refused = 0u64;
    for &u in &stream.updates()[..10] {
        match svc.submit(u) {
            Ok(()) => {}
            Err(CsmError::Backpressure { capacity }) => {
                assert_eq!(capacity, 4);
                refused += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(refused, 6);
    // Draining frees capacity; subsequent submits are admitted again.
    svc.drain().unwrap();
    svc.submit(stream.updates()[10]).unwrap();
    let report = svc.shutdown().unwrap();
    assert_eq!(report.admitted, 5);
    assert_eq!(report.rejected, 6);
    assert_eq!(report.processed, 5);
    assert!(report.to_json().contains("\"rejected\":6"));
}

/// Live removal drains in-flight work first, returns the departing
/// session's tagged report, and leaves the remaining sessions serving.
#[test]
fn live_removal_drains_and_reports() {
    let (g, stream) = dense_workload(41);
    let mut svc = CsmService::new(g.clone(), ServiceConfig::default()).unwrap();
    let stay = svc
        .add_session(
            SessionSpec::new(triangle(), ParaCosmConfig::sequential()).with_label("stay"),
            Box::new(AlgoKind::GraphFlow.build(&g, &triangle())),
            Box::new(NoopObserver),
        )
        .unwrap();
    let leave = svc
        .add_session(
            SessionSpec::new(path3(0, 1, 0), ParaCosmConfig::sequential()).with_label("leave"),
            Box::new(AlgoKind::Symbi.build(&g, &path3(0, 1, 0))),
            Box::new(NoopObserver),
        )
        .unwrap();
    assert_eq!(svc.session_count(), 2);

    // Enqueue without draining, then remove: the departing session must
    // still observe the in-flight updates (remove drains first).
    let half = 20;
    for &u in &stream.updates()[..half] {
        svc.submit(u).unwrap();
    }
    let left = svc.remove_session(leave).unwrap();
    assert_eq!(left.stats.updates, half as u64);
    assert_eq!(left.session.as_ref().unwrap().label, "leave");
    assert_eq!(svc.session_count(), 1);

    // Removing again is an error, not a panic.
    assert!(matches!(
        svc.remove_session(leave),
        Err(CsmError::SessionNotFound(id)) if id == leave
    ));

    for &u in &stream.updates()[half..] {
        svc.submit(u).unwrap();
    }
    let report = svc.shutdown().unwrap();
    assert_eq!(report.sessions.len(), 1);
    let kept = &report.sessions[0];
    assert_eq!(kept.session.as_ref().unwrap().session_id, stay);
    assert_eq!(kept.stats.updates, stream.len() as u64);

    // The survivor's ΔM still matches a standalone run of the full stream.
    let mut solo = ParaCosm::new(
        g.clone(),
        triangle(),
        AlgoKind::GraphFlow.build(&g, &triangle()),
        ParaCosmConfig::sequential(),
    );
    let solo_out = solo.process_stream(&stream).unwrap();
    assert_eq!(kept.stats.positives, solo_out.positives);
    assert_eq!(kept.stats.negatives, solo_out.negatives);
}

/// An impossible per-update budget walks the ladder down to `Skipped`;
/// the observer sees `skipped` flags (ΔM unknown, not zero) and the
/// session dimensions surface overruns/degraded/skipped in the report.
#[test]
fn tight_budget_degrades_and_is_surfaced() {
    let (g, stream) = dense_workload(53);
    let mut svc = CsmService::new(g.clone(), ServiceConfig::default()).unwrap();
    let (watch, _, skipped) = Watch::new();
    let id = svc
        .add_session(
            SessionSpec::new(triangle(), ParaCosmConfig::sequential())
                .with_label("tight")
                .with_budget(Duration::from_nanos(1)),
            Box::new(AlgoKind::GraphFlow.build(&g, &triangle())),
            Box::new(watch),
        )
        .unwrap();
    for &u in stream.updates() {
        svc.submit(u).unwrap();
    }
    assert_eq!(svc.session_level(id).unwrap(), DegradeLevel::Full);
    svc.drain().unwrap();
    assert_eq!(
        svc.session_level(id).unwrap(),
        DegradeLevel::Skipped,
        "a 1ns budget must walk the ladder all the way down"
    );
    let report = svc.shutdown().unwrap();
    let dims = report.sessions[0].session.as_ref().unwrap();
    assert!(
        dims.budget_overruns >= 2,
        "overruns: {}",
        dims.budget_overruns
    );
    assert!(dims.degraded >= 1, "count-only rung must have engaged");
    assert!(dims.skipped >= 1, "skipped rung must have engaged");
    assert_eq!(
        skipped.load(Ordering::Relaxed),
        dims.skipped,
        "observer and report disagree on skips"
    );
    let json = report.sessions[0].to_json();
    assert!(json.contains("\"session\""));
    assert!(json.contains(&format!("\"skipped\":{}", dims.skipped)));
}

/// A generous budget never degrades: every update is served at `Full`
/// fidelity and the report carries zeroed degradation dimensions.
#[test]
fn generous_budget_never_degrades() {
    let (g, stream) = dense_workload(61);
    let mut svc = CsmService::new(g.clone(), ServiceConfig::default()).unwrap();
    let id = svc
        .add_session(
            SessionSpec::new(triangle(), ParaCosmConfig::sequential())
                .with_budget(Duration::from_secs(3600)),
            Box::new(AlgoKind::GraphFlow.build(&g, &triangle())),
            Box::new(NoopObserver),
        )
        .unwrap();
    for &u in stream.updates() {
        svc.submit(u).unwrap();
    }
    svc.drain().unwrap();
    assert_eq!(svc.session_level(id).unwrap(), DegradeLevel::Full);
    let report = svc.shutdown().unwrap();
    let dims = report.sessions[0].session.as_ref().unwrap();
    assert_eq!(dims.budget_overruns, 0);
    assert_eq!(dims.degraded, 0);
    assert_eq!(dims.skipped, 0);
}

/// Shutdown closes the queue: a still-held ingest handle gets
/// `ServiceClosed`, and registration on a closed service fails the same
/// way.
#[test]
fn shutdown_closes_ingest() {
    let (g, stream) = dense_workload(71);
    let mut svc = CsmService::new(g.clone(), ServiceConfig::default()).unwrap();
    svc.add_session(
        SessionSpec::new(triangle(), ParaCosmConfig::sequential()),
        Box::new(AlgoKind::GraphFlow.build(&g, &triangle())),
        Box::new(NoopObserver),
    )
    .unwrap();
    let handle = svc.ingest();
    handle.send(stream.updates()[0]).unwrap();
    assert!(handle.is_open());
    let report = svc.shutdown().unwrap();
    assert_eq!(report.processed, 1, "shutdown drains admitted updates");
    assert!(!handle.is_open());
    assert!(matches!(
        handle.send(stream.updates()[1]),
        Err(CsmError::ServiceClosed)
    ));
}

/// The shared-index differential: the same five-tenant service — including
/// a duplicate-query session under a *different* algorithm, so the delta
/// cache is actually exercised — produces bit-identical per-session ΔM,
/// classifier verdicts, and update counts with the index off and on; and
/// the index's lifetime hit counter reconciles exactly with the sum of
/// per-session reuse dimensions.
#[test]
fn shared_index_on_off_differential() {
    let (g, stream) = dense_workload(97);
    let tenants: Vec<(QueryGraph, AlgoKind, &str)> = vec![
        (triangle(), AlgoKind::GraphFlow, "triangles"),
        (path3(0, 1, 0), AlgoKind::Symbi, "wedge-010"),
        (path3(1, 0, 1), AlgoKind::TurboFlux, "wedge-101"),
        (path3(0, 0, 1), AlgoKind::NewSP, "path-001"),
        // Same pattern as "triangles" hosted by a different algorithm:
        // ΔM is a pure function of (graph, query, update), so with the
        // index on this session absorbs the cached delta instead of
        // enumerating a second time.
        (triangle(), AlgoKind::Symbi, "triangles-dup"),
    ];
    let run = |shared_index: bool| -> ServiceReport {
        let mut svc = CsmService::new(
            g.clone(),
            ServiceConfig {
                queue_capacity: 64,
                policy: Backpressure::Block,
                shared_index,
                flight_capacity: 1024,
            },
        )
        .unwrap();
        for (q, kind, label) in &tenants {
            svc.add_session(
                SessionSpec::new(q.clone(), ParaCosmConfig::sequential()).with_label(*label),
                Box::new(kind.build(&g, q)),
                Box::new(NoopObserver),
            )
            .unwrap();
        }
        for &u in stream.updates() {
            svc.submit(u).unwrap();
        }
        svc.shutdown().unwrap()
    };

    let off = run(false);
    let on = run(true);
    assert!(
        off.shared.is_none(),
        "index off must report no shared stats"
    );
    let sh = on.shared.expect("index on must report shared stats");
    assert!(
        sh.subpatterns > 0,
        "five queries must register sub-patterns"
    );
    assert!(
        sh.hits > 0,
        "the duplicate-query session must absorb cached deltas"
    );
    let reuses: u64 = on
        .sessions
        .iter()
        .map(|s| s.session.as_ref().unwrap().shared_reuses)
        .sum();
    assert_eq!(sh.hits, reuses, "index hits must equal Σ session reuses");

    assert_eq!(off.sessions.len(), on.sessions.len());
    for (a, b) in off.sessions.iter().zip(&on.sessions) {
        let label = &a.session.as_ref().unwrap().label;
        assert_eq!(
            (a.stats.positives, a.stats.negatives),
            (b.stats.positives, b.stats.negatives),
            "session {label}: ΔM diverges between index off and on"
        );
        assert_eq!(
            a.stats.classifier, b.stats.classifier,
            "session {label}: classifier verdicts diverge"
        );
        assert_eq!(a.stats.updates, b.stats.updates);
        assert_eq!(
            a.session.as_ref().unwrap().shared_reuses,
            0,
            "session {label}: index-off runs must never reuse"
        );
    }
}

/// Live registration and removal invalidate the shared index correctly:
/// a session removed mid-stream gets the same tagged report with the
/// index on as off, a session added mid-stream (duplicating a live
/// query) still reuses cached deltas, and the survivors' final ΔM stays
/// bit-identical across both modes.
#[test]
fn shared_index_survives_live_add_and_remove() {
    let (g, stream) = dense_workload(103);
    let half = stream.len() / 2;
    let run = |shared_index: bool| -> (RunReport, ServiceReport) {
        let mut svc = CsmService::new(
            g.clone(),
            ServiceConfig {
                queue_capacity: 64,
                policy: Backpressure::Block,
                shared_index,
                flight_capacity: 1024,
            },
        )
        .unwrap();
        let add = |svc: &mut CsmService, q: QueryGraph, kind: AlgoKind, label: &str| {
            svc.add_session(
                SessionSpec::new(q.clone(), ParaCosmConfig::sequential()).with_label(label),
                Box::new(kind.build(&g, &q)),
                Box::new(NoopObserver),
            )
            .unwrap()
        };
        add(&mut svc, triangle(), AlgoKind::GraphFlow, "stay");
        let leaver = add(&mut svc, triangle(), AlgoKind::Symbi, "leave");
        add(&mut svc, path3(0, 1, 0), AlgoKind::TurboFlux, "wedge");
        for &u in &stream.updates()[..half] {
            svc.submit(u).unwrap();
        }
        let left = svc.remove_session(leaver).unwrap();
        // A mid-stream joiner duplicating a live query: the index must
        // pick the new share group up without a rebuild.
        add(&mut svc, path3(0, 1, 0), AlgoKind::NewSP, "wedge-dup");
        for &u in &stream.updates()[half..] {
            svc.submit(u).unwrap();
        }
        (left, svc.shutdown().unwrap())
    };

    let (left_off, off) = run(false);
    let (left_on, on) = run(true);
    assert_eq!(left_off.stats.updates, half as u64);
    assert_eq!(
        (left_off.stats.positives, left_off.stats.negatives),
        (left_on.stats.positives, left_on.stats.negatives),
        "removed session: ΔM diverges between index off and on"
    );
    assert_eq!(left_off.stats.classifier, left_on.stats.classifier);
    for (a, b) in off.sessions.iter().zip(&on.sessions) {
        let label = &a.session.as_ref().unwrap().label;
        assert_eq!(
            (a.stats.positives, a.stats.negatives),
            (b.stats.positives, b.stats.negatives),
            "session {label}: ΔM diverges between index off and on"
        );
        assert_eq!(a.stats.classifier, b.stats.classifier);
    }
    // The mid-stream duplicate still exchanged deltas with its group.
    let dup = on
        .sessions
        .iter()
        .find(|s| s.session.as_ref().unwrap().label == "wedge-dup")
        .unwrap();
    assert!(
        dup.session.as_ref().unwrap().shared_reuses > 0,
        "mid-stream duplicate must reuse cached deltas"
    );
}

/// Registration validates the per-session config and query through the
/// same [`CsmError::ConfigInvalid`] taxonomy as the standalone engine.
#[test]
fn add_session_validates_config_and_query() {
    let (g, _) = dense_workload(83);
    let mut svc = CsmService::new(g.clone(), ServiceConfig::default()).unwrap();
    let mut bad = ParaCosmConfig::sequential();
    bad.batch_size = 0;
    assert!(matches!(
        svc.add_session(
            SessionSpec::new(triangle(), bad),
            Box::new(AlgoKind::GraphFlow.build(&g, &triangle())),
            Box::new(NoopObserver),
        ),
        Err(CsmError::ConfigInvalid {
            field: "batch_size",
            ..
        })
    ));
    assert!(matches!(
        svc.add_session(
            SessionSpec::new(QueryGraph::new(), ParaCosmConfig::sequential()),
            Box::new(AlgoKind::GraphFlow.build(&g, &triangle())),
            Box::new(NoopObserver),
        ),
        Err(CsmError::ConfigInvalid { field: "query", .. })
    ));
    assert_eq!(svc.session_count(), 0);
}
