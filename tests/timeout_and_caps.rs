//! Time-limit (success-rate) and match-cap semantics.

use csm_graph::{
    DataGraph, ELabel, EdgeUpdate, QueryGraph, Update, UpdateStream, VLabel, VertexId,
};
use paracosm::algos::{AlgoKind, AnyAlgorithm};
use paracosm::core::{ParaCosm, ParaCosmConfig};
use std::time::Duration;

/// A dense unlabeled graph where a 5-cycle query explodes combinatorially.
fn explosive() -> (DataGraph, QueryGraph, UpdateStream) {
    let mut g = DataGraph::new();
    let n = 64u32;
    for _ in 0..n {
        g.add_vertex(VLabel(0));
    }
    for i in 0..n {
        for j in i + 1..n {
            // Keep ~2/3 of all pairs; unlike a parity split this stays one
            // dense component, so cycles through any edge abound.
            if (i + j) % 3 != 0 {
                g.insert_edge(VertexId(i), VertexId(j), ELabel(0)).unwrap();
            }
        }
    }
    let mut q = QueryGraph::new();
    let us: Vec<_> = (0..5).map(|_| q.add_vertex(VLabel(0))).collect();
    for i in 0..5 {
        q.add_edge(us[i], us[(i + 1) % 5], ELabel(0)).unwrap();
    }
    // One update that triggers a huge enumeration.
    let stream: UpdateStream = vec![Update::InsertEdge(EdgeUpdate::new(
        VertexId(0),
        VertexId(1),
        ELabel(0),
    ))]
    .into_iter()
    .collect();
    // Ensure the edge is absent initially.
    let _ = g.remove_edge(VertexId(0), VertexId(1));
    (g, q, stream)
}

#[test]
fn tiny_time_limit_times_out_sequential_and_parallel() {
    // A zero limit is rejected at construction since the config taxonomy
    // landed ([`ParaCosmConfig::validate`]); 1 ns is the smallest budget
    // that validates, and it still expires before any enumeration work.
    assert!(ParaCosmConfig::sequential()
        .with_time_limit(Duration::ZERO)
        .validate()
        .is_err());
    let (g, q, stream) = explosive();
    for cfg in [
        ParaCosmConfig::sequential().with_time_limit(Duration::from_nanos(1)),
        ParaCosmConfig::parallel(4).with_time_limit(Duration::from_nanos(1)),
        ParaCosmConfig::simulated(8).with_time_limit(Duration::from_nanos(1)),
    ] {
        let algo = AlgoKind::GraphFlow.build(&g, &q);
        let mut e: ParaCosm<AnyAlgorithm> = ParaCosm::new(g.clone(), q.clone(), algo, cfg);
        let out = e.process_stream(&stream).unwrap();
        assert!(out.timed_out, "expected timeout");
    }
}

#[test]
fn generous_time_limit_succeeds() {
    let (g, q, stream) = explosive();
    let algo = AlgoKind::NewSP.build(&g, &q);
    let cfg = ParaCosmConfig::sequential().with_time_limit(Duration::from_secs(120));
    let mut e: ParaCosm<AnyAlgorithm> = ParaCosm::new(g, q, algo, cfg);
    let out = e.process_stream(&stream).unwrap();
    assert!(!out.timed_out);
    assert!(out.positives > 1000, "dense graph must fan out");
}

#[test]
fn match_cap_bounds_enumeration() {
    let (g, q, stream) = explosive();
    let mut cfg = ParaCosmConfig::sequential();
    cfg.match_cap = Some(100);
    let algo = AlgoKind::GraphFlow.build(&g, &q);
    let mut e: ParaCosm<AnyAlgorithm> = ParaCosm::new(g.clone(), q.clone(), algo, cfg);
    let out = e.process_stream(&stream).unwrap();
    assert_eq!(out.positives, 100);

    // Parallel cap is approximate (workers may overshoot by up to one
    // report each) but must stay tightly bounded.
    let mut cfg = ParaCosmConfig::parallel(4);
    cfg.match_cap = Some(100);
    cfg.inter_update = false;
    let algo = AlgoKind::GraphFlow.build(&g, &q);
    let mut e: ParaCosm<AnyAlgorithm> = ParaCosm::new(g, q, algo, cfg);
    let out = e.process_stream(&stream).unwrap();
    assert!(
        out.positives >= 100 && out.positives <= 104,
        "got {}",
        out.positives
    );
}

#[test]
fn timeout_flag_propagates_from_stats() {
    let (g, q, stream) = explosive();
    let algo = AlgoKind::Symbi.build(&g, &q);
    let cfg = ParaCosmConfig::sequential().with_time_limit(Duration::from_nanos(1));
    let mut e: ParaCosm<AnyAlgorithm> = ParaCosm::new(g, q, algo, cfg);
    let out = e.process_stream(&stream).unwrap();
    assert!(out.timed_out);
    assert!(out.updates_applied <= 1);
}
