//! Profiler-plane integration tests: the live cardinality catalog must
//! stay *exact* — bit-identical to a from-scratch rebuild over the final
//! graph — under every apply path the serving layer has (serial per-op,
//! sharded batched multi-writer, vertex cascade deletes), and the
//! `/profile` scrape must reconcile exactly with the shutdown
//! [`ServiceReport`], because both read the same attribution grid.

#![deny(deprecated)]

use paracosm::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

struct Lcg(u64);

impl Lcg {
    fn below(&mut self, n: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) % n
    }
}

const NV: u32 = 50;

fn base_graph(seed: u64) -> DataGraph {
    let mut g = DataGraph::new();
    let mut rng = Lcg(seed);
    for i in 0..NV {
        g.add_vertex(VLabel(i % 3));
    }
    for _ in 0..100 {
        let (a, b) = (rng.below(NV as u64) as u32, rng.below(NV as u64) as u32);
        if a != b {
            let _ = g.insert_edge(VertexId(a), VertexId(b), ELabel((a + b) % 2));
        }
    }
    g
}

/// Edge-only churn, hub-skewed: long label-safe runs so a sharded
/// backend batches well past `MIN_SHARDED_BATCH` through
/// `apply_edge_batch` (the multi-writer path the catalog's touch
/// protocol must survive).
fn edge_stream(seed: u64, len: usize) -> Vec<Update> {
    let mut rng = Lcg(seed ^ 0x9E3779B97F4A7C15);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let pick = |rng: &mut Lcg| {
            if rng.below(4) < 3 {
                rng.below(8) as u32
            } else {
                rng.below(NV as u64) as u32
            }
        };
        let (a, b) = (pick(&mut rng), pick(&mut rng));
        let e = EdgeUpdate::new(VertexId(a), VertexId(b), ELabel(rng.below(2) as u32));
        out.push(if rng.below(100) < 60 {
            Update::InsertEdge(e)
        } else {
            Update::DeleteEdge(e)
        });
    }
    out
}

/// Full churn: edge ops plus vertex inserts and cascading vertex
/// deletes, which break batchable runs and exercise the serial apply
/// path and the `v ∪ N(v)` cascade touch set.
fn churn_stream(seed: u64, len: usize) -> Vec<Update> {
    let mut rng = Lcg(seed ^ 0x0DDB1A5E5BAD5EED);
    let mut out = Vec::with_capacity(len);
    let mut next_vid = NV;
    for _ in 0..len {
        let roll = rng.below(100);
        let a = rng.below(NV as u64 + 10) as u32;
        let b = rng.below(NV as u64 + 10) as u32;
        let e = EdgeUpdate::new(VertexId(a), VertexId(b), ELabel(rng.below(2) as u32));
        out.push(match roll {
            0..=49 => Update::InsertEdge(e),
            50..=79 => Update::DeleteEdge(e),
            80..=91 => {
                next_vid += 1;
                Update::InsertVertex {
                    id: VertexId(next_vid),
                    label: VLabel(next_vid % 3),
                }
            }
            _ => Update::DeleteVertex {
                id: VertexId(rng.below(next_vid as u64) as u32),
            },
        });
    }
    out
}

/// A query over labels the streams never carry: every edge update is
/// label-safe for this session, so sharded drains batch whole runs.
fn absent_label_query() -> QueryGraph {
    let mut q = QueryGraph::new();
    let a = q.add_vertex(VLabel(7));
    let b = q.add_vertex(VLabel(8));
    q.add_edge(a, b, ELabel(5)).unwrap();
    q
}

/// A query over live labels: updates classify unsafe and enumerate, so
/// the profiler grid fills while the catalog rides the serial path.
fn live_label_query() -> QueryGraph {
    let mut q = QueryGraph::new();
    let a = q.add_vertex(VLabel(0));
    let b = q.add_vertex(VLabel(1));
    let c = q.add_vertex(VLabel(2));
    q.add_edge(a, b, ELabel(0)).unwrap();
    q.add_edge(b, c, ELabel(0)).unwrap();
    q
}

/// Drive `stream` through a `Full`-profiled service over `g`; return
/// the incrementally maintained catalog and a rebuild oracle over the
/// final graph.
fn catalog_differential<G: GraphShard>(
    g: G,
    q: QueryGraph,
    stream: &[Update],
) -> (CardinalityCatalog, CardinalityCatalog) {
    let mut svc = CsmService::new(g, ServiceConfig::default()).unwrap();
    let algo = Box::new(AlgoKind::GraphFlow.build(svc.graph(), &q));
    let spec = SessionSpec::new(q, ParaCosmConfig::sequential().profiled(ProfileLevel::Full));
    svc.add_session(spec, algo, Box::new(NoopObserver)).unwrap();
    for &u in stream {
        svc.submit(u).unwrap();
    }
    svc.drain().unwrap();
    let live = svc
        .catalog_snapshot()
        .expect("a Full session activates the catalog");
    let mut oracle = CardinalityCatalog::new();
    oracle.rebuild(svc.graph());
    svc.shutdown().unwrap();
    (live, oracle)
}

/// Acceptance: the incrementally maintained catalog equals a rebuild
/// oracle after a sharded, batched, multi-writer drain (runs well past
/// `MIN_SHARDED_BATCH`, every shard count and partitioner).
#[test]
fn catalog_exact_under_sharded_batched_apply() {
    for shards in [2usize, 4] {
        for seed in [3u64, 17] {
            let stream = edge_stream(seed, 300);
            let sg =
                ShardedGraph::from_graph(ShardConfig::hash(shards), &base_graph(seed)).unwrap();
            let (live, oracle) = catalog_differential(sg, absent_label_query(), &stream);
            assert_eq!(
                live, oracle,
                "sharded batched apply drifted the catalog (shards={shards}, seed={seed})"
            );
            assert!(oracle.num_triples() > 0, "workload must be non-trivial");
        }
    }
    let stream = edge_stream(5, 300);
    let sg = ShardedGraph::from_graph(ShardConfig::range_even(3, NV * 2), &base_graph(5)).unwrap();
    let (live, oracle) = catalog_differential(sg, absent_label_query(), &stream);
    assert_eq!(live, oracle, "range partitioner drifted the catalog");
}

/// Same differential on the monolithic serial path, with a session that
/// actually enumerates and a stream full of vertex inserts and cascade
/// deletes.
#[test]
fn catalog_exact_under_serial_path_and_cascades() {
    for seed in [1u64, 9, 42] {
        let stream = churn_stream(seed, 250);
        let (live, oracle) = catalog_differential(base_graph(seed), live_label_query(), &stream);
        assert_eq!(
            live, oracle,
            "serial/cascade path drifted the catalog (seed={seed})"
        );
    }
}

/// Mixed sessions (one profiled, one not) over a sharded backend: the
/// catalog exists once, is maintained once, and stays exact while the
/// unprofiled session rides along.
#[test]
fn catalog_exact_with_mixed_profiled_sessions() {
    let stream = churn_stream(13, 250);
    let sg = ShardedGraph::from_graph(ShardConfig::hash(2), &base_graph(13)).unwrap();
    let mut svc = CsmService::new(sg, ServiceConfig::default()).unwrap();
    let q0 = live_label_query();
    let algo0 = Box::new(AlgoKind::GraphFlow.build(svc.graph(), &q0));
    svc.add_session(
        SessionSpec::new(q0, ParaCosmConfig::sequential()),
        algo0,
        Box::new(NoopObserver),
    )
    .unwrap();
    assert!(
        svc.catalog_snapshot().is_none(),
        "no catalog before a Full session registers"
    );
    let q1 = absent_label_query();
    let algo1 = Box::new(AlgoKind::GraphFlow.build(svc.graph(), &q1));
    svc.add_session(
        SessionSpec::new(
            q1,
            ParaCosmConfig::sequential().profiled(ProfileLevel::Full),
        ),
        algo1,
        Box::new(NoopObserver),
    )
    .unwrap();
    for &u in &stream {
        svc.submit(u).unwrap();
    }
    svc.drain().unwrap();
    let live = svc.catalog_snapshot().unwrap();
    let mut oracle = CardinalityCatalog::new();
    oracle.rebuild(svc.graph());
    svc.shutdown().unwrap();
    assert_eq!(live, oracle, "mixed-session drain drifted the catalog");
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("endpoint reachable");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {resp:?}"));
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Extract the `"totals":{...}` object after a `"profile":` key.
fn totals_object(body: &str) -> String {
    let at = body.find("\"totals\":{").expect("profile totals present");
    let rest = &body[at..];
    let end = rest.find('}').expect("balanced totals object");
    rest[..=end].to_string()
}

/// Acceptance: `GET /profile` reconciles **exactly** with the shutdown
/// report — same attribution grid, same totals — and
/// `GET /debug/explain/<id>` ranks the session's query edges with
/// catalog estimates attached.
#[test]
fn profile_scrape_reconciles_with_shutdown_report() {
    let g = base_graph(21);
    let mut svc = CsmService::new(g, ServiceConfig::default()).unwrap();
    let q = live_label_query();
    let algo = Box::new(AlgoKind::GraphFlow.build(svc.graph(), &q));
    svc.add_session(
        SessionSpec::new(q, ParaCosmConfig::sequential().profiled(ProfileLevel::Full))
            .with_label("wedge"),
        algo,
        Box::new(NoopObserver),
    )
    .unwrap();
    let t = svc
        .start_telemetry(TelemetryConfig::new("127.0.0.1:0"))
        .unwrap();
    let addr = t.local_addr();

    for &u in &edge_stream(21, 200) {
        svc.submit(u).unwrap();
    }
    svc.drain().unwrap();

    let (code, profile) = http_get(addr, "/profile");
    assert_eq!(code, 200);
    assert!(profile.contains("\"schema_version\":1"));
    assert!(profile.contains("\"catalog\":{\"triples\":"));
    assert!(profile.contains("\"label\":\"wedge\""));
    assert!(profile.contains("\"level\":\"on\""));
    let scraped_totals = totals_object(&profile);

    let (code, explain) = http_get(addr, "/debug/explain/0");
    assert_eq!(code, 200);
    assert!(explain.contains("\"session\":0"));
    assert!(explain.contains("\"edges\":["));
    assert!(explain.contains("\"rank\":0"));
    assert!(explain.contains("\"estimate\":"));
    assert!(explain.contains("\"observed_card\":"));
    assert_eq!(http_get(addr, "/debug/explain/99").0, 404);
    assert_eq!(http_get(addr, "/debug/explain/bogus").0, 400);

    let report = svc.shutdown().unwrap();
    let report_totals = totals_object(&report.to_json());
    assert_eq!(
        scraped_totals, report_totals,
        "/profile drifted from the shutdown report's attribution grid"
    );
    assert_ne!(
        scraped_totals, "\"totals\":{}",
        "profiled run must attribute some work"
    );
}
