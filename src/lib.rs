//! # paracosm — facade crate for the ParaCOSM reproduction
//!
//! Re-exports the subsystem crates under one roof:
//!
//! * [`graph`] — dynamic labeled graphs, query graphs, update streams, IO;
//! * [`core`] — the ParaCOSM framework (inner-/inter-update executors,
//!   matching kernel, `CsmAlgorithm` plug-in trait);
//! * [`algos`] — the five CSM baselines (GraphFlow, TurboFlux, Symbi,
//!   CaLiG, NewSP);
//! * [`datagen`] — synthetic datasets, query extraction, update streams;
//! * [`service`] — the multi-session serving layer (standing queries over
//!   one shared graph, bounded admission, per-session reports).
//!
//! Most programs only need [`prelude`] — the blessed, stable API surface.
//! See `examples/quickstart.rs` for a five-minute tour,
//! `examples/multi_tenant.rs` for the serving layer, and the
//! `paracosm-bench` crate for the full paper-evaluation harness.

#![forbid(unsafe_code)]

pub use csm_algos as algos;
pub use csm_datagen as datagen;
pub use csm_graph as graph;
pub use csm_service as service;
pub use paracosm_core as core;

/// The blessed API surface in one import: everything the examples, the
/// CLI, and downstream embedders need, without reaching into deep module
/// paths.
///
/// One-query streaming ([`ParaCosm`](paracosm_core::ParaCosm)):
///
/// ```
/// use paracosm::prelude::*;
///
/// // Data: path v0-v1-v2; query: triangle; one insert closes it.
/// let mut g = DataGraph::new();
/// let v: Vec<_> = (0..3).map(|_| g.add_vertex(VLabel(0))).collect();
/// g.insert_edge(v[0], v[1], ELabel(0)).unwrap();
/// g.insert_edge(v[1], v[2], ELabel(0)).unwrap();
/// let mut q = QueryGraph::new();
/// let u: Vec<_> = (0..3).map(|_| q.add_vertex(VLabel(0))).collect();
/// q.add_edge(u[0], u[1], ELabel(0)).unwrap();
/// q.add_edge(u[1], u[2], ELabel(0)).unwrap();
/// q.add_edge(u[0], u[2], ELabel(0)).unwrap();
///
/// let algo = AlgoKind::GraphFlow.build(&g, &q);
/// let mut engine = ParaCosm::new(g, q, algo, ParaCosmConfig::sequential());
/// let stream: UpdateStream =
///     [Update::InsertEdge(EdgeUpdate::new(v[0], v[2], ELabel(0)))].into_iter().collect();
/// let out = engine.process_stream(&stream).unwrap();
/// assert_eq!(out.positives, 6); // one triangle × 6 automorphic mappings
/// ```
///
/// Many standing queries over one graph ([`CsmService`](csm_service::CsmService)):
///
/// ```
/// use paracosm::prelude::*;
///
/// let mut g = DataGraph::new();
/// let v: Vec<_> = (0..3).map(|_| g.add_vertex(VLabel(0))).collect();
/// g.insert_edge(v[0], v[1], ELabel(0)).unwrap();
/// let mut q = QueryGraph::new();
/// let a = q.add_vertex(VLabel(0));
/// let b = q.add_vertex(VLabel(0));
/// q.add_edge(a, b, ELabel(0)).unwrap();
///
/// let mut svc = CsmService::new(g, ServiceConfig::default()).unwrap();
/// let algo = Box::new(GraphFlow::new());
/// let spec = SessionSpec::new(q, ParaCosmConfig::sequential()).with_label("edges");
/// svc.add_session(spec, algo, Box::new(NoopObserver)).unwrap();
///
/// svc.submit(Update::InsertEdge(EdgeUpdate::new(v[1], v[2], ELabel(0)))).unwrap();
/// svc.drain().unwrap();
/// let report = svc.shutdown().unwrap();
/// assert_eq!(report.sessions[0].stats.positives, 2); // one edge, both orientations
/// ```
pub mod prelude {
    pub use csm_algos::{AlgoKind, AnyAlgorithm, CaLiG, GraphFlow, NewSP, Symbi, TurboFlux};
    pub use csm_datagen::{synth, DatasetKind, Scale, StreamConfig, SynthConfig, WorkloadConfig};
    pub use csm_graph::{
        io, CardinalityCatalog, DataGraph, ELabel, EdgeUpdate, GraphShard, MemShard, Partition,
        QVertexId, QueryGraph, ShardConfig, ShardStats, ShardedGraph, Update, UpdateStream, VLabel,
        VertexId,
    };
    pub use csm_service::{
        AdmissionQueue, Backpressure, CsmService, DegradeLevel, IngestHandle, ServiceConfig,
        ServiceReport, SessionSpec, SharedIndexStats, StallDiagnostic, StallDossier, StallKind,
        TelemetryConfig, TelemetryHandle,
    };
    pub use paracosm_core::{
        AdsChange, AlgorithmFactory, Classified, CsmAlgorithm, CsmError, CsmResult, Embedding,
        Engine, FanKind, FlightConfig, FlightEvent, FlightRecorder, FlightSnapshot, FlightStage,
        LatencyHistogram, Match, MatchSink, NoopObserver, ParaCosm, ParaCosmConfig, ProfileLevel,
        Profiler, QueryProfile, RunReport, RunStats, SearchCtx, SearchStats, SessionDims, SpanId,
        StreamObserver, StreamOutcome, TraceLevel, UpdateObservation, UpdateOutcome, WindowConfig,
        WindowRing, WindowSnapshot, SESSION_AGGREGATE,
    };

    /// The facade's datagen crate under its blessed name (dataset loading
    /// helpers beyond the items re-exported above).
    pub use csm_datagen as datagen;
}
