//! # paracosm — facade crate for the ParaCOSM reproduction
//!
//! Re-exports the subsystem crates under one roof:
//!
//! * [`graph`] — dynamic labeled graphs, query graphs, update streams, IO;
//! * [`core`] — the ParaCOSM framework (inner-/inter-update executors,
//!   matching kernel, `CsmAlgorithm` plug-in trait);
//! * [`algos`] — the five CSM baselines (GraphFlow, TurboFlux, Symbi,
//!   CaLiG, NewSP);
//! * [`datagen`] — synthetic datasets, query extraction, update streams.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the
//! `paracosm-bench` crate for the full paper-evaluation harness.

#![forbid(unsafe_code)]

pub use csm_algos as algos;
pub use csm_datagen as datagen;
pub use csm_graph as graph;
pub use paracosm_core as core;

/// Commonly used items in one import.
pub mod prelude {
    pub use csm_algos::{AlgoKind, AnyAlgorithm, CaLiG, GraphFlow, NewSP, Symbi, TurboFlux};
    pub use csm_datagen::{DatasetKind, Scale, StreamConfig, WorkloadConfig};
    pub use csm_graph::{
        DataGraph, ELabel, EdgeUpdate, QVertexId, QueryGraph, Update, UpdateStream, VLabel,
        VertexId,
    };
    pub use paracosm_core::{
        AdsChange, CsmAlgorithm, Match, ParaCosm, ParaCosmConfig, StreamOutcome, UpdateOutcome,
    };
}
