//! `paracosm-cli` — run continuous subgraph matching from files, the way the
//! original CSM benchmark suites are driven.
//!
//! ```text
//! paracosm-cli --graph G.txt --query Q.txt --stream S.txt [options]
//!
//!   --algo NAME        graphflow|turboflux|symbi|calig|newsp   (default: symbi)
//!   --threads N        worker threads (1 = sequential)         (default: all cores)
//!   --batch N          inter-update batch size                 (default: 1024)
//!   --no-inter         disable inter-update parallelism
//!   --timeout-ms N     per-run time limit
//!   --initial          also count initial matches before streaming
//!   --per-update       print a line per update with its ΔM
//!   --trace LEVEL      off|counters|full                       (default: off)
//!   --trace-out PATH   write a Chrome/Perfetto trace JSON (implies --trace full)
//!   --report-json PATH write a machine-readable run report (implies counters)
//!   --slow-k N         capture the N slowest updates in the report
//!   --profile LEVEL    off|counters|on — per-(order, depth) enumeration
//!                      profiler (the report's "profile" block)
//!   --quiet            suppress the end-of-run latency/verdict summary
//!
//! paracosm-cli explain --graph G.txt --query Q.txt --stream S.txt [options]
//!
//!   Replays the stream with the profiler at level `on`, rebuilds the
//!   cardinality catalog over the final graph, and prints the query's
//!   oriented seed edges ranked by attributed enumeration cost — each
//!   depth showing catalog-estimated vs observed candidate cardinality.
//!
//!   --algo NAME        graphflow|turboflux|symbi|calig|newsp   (default: symbi)
//!   --threads N        worker threads (1 = sequential)         (default: all cores)
//!   --top N            print at most N edges                   (default: all)
//!   --json PATH        also write the EXPLAIN document as JSON
//!
//! paracosm-cli serve --graph G.txt --stream S.txt --session Q.txt[:algo[:label]] ...
//!
//!   --session SPEC     standing query: path[:algo[:label]] (repeatable)
//!   --threads N        worker threads per session              (default: 1)
//!   --queue N          admission queue capacity                (default: 1024)
//!   --policy P         block|shed-oldest|reject                (default: block)
//!   --budget-ms N      per-update Find_Matches budget (degradation ladder)
//!   --report-json PATH write the multi-session service report
//!   --quiet            suppress the per-session summary
//!   --telemetry-addr A serve GET /metrics, /healthz, /readyz, /sessions on
//!                      A (e.g. 127.0.0.1:9184; port 0 picks a free port —
//!                      the bound address is printed on startup)
//!   --stall-deadline-ms N  watchdog no-progress deadline  (default: 5000)
//!   --linger-ms N      after draining the stream, keep serving (and the
//!                      telemetry endpoint up) for N ms before shutdown
//!   --shards N         partition the data graph into N hash shards and
//!                      run the multi-writer batched drain (default: 1 =
//!                      monolithic; per-session ΔM is identical)
//!   --profile LEVEL    off|counters|on — per-session enumeration profiler;
//!                      `on` additionally maintains the live cardinality
//!                      catalog and serves GET /profile and
//!                      GET /debug/explain/<session>      (default: off)
//!   --shared-index on|off  cross-session shared-work index (default: on)
//!   --flight-capacity N  flight-recorder events retained per shard
//!                      (default: 1024; the recorder is always on)
//!   --dump-flight-on-stall PATH  if any stall was flagged, write the
//!                      flight recorder as Perfetto trace JSON at shutdown
//!   --wedge-ms N       after submitting the stream, hold the queue
//!                      unprocessed for N ms (forces a wedged-queue stall
//!                      when N exceeds the stall deadline; CI/forensics)
//! ```

use paracosm::prelude::*;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: paracosm-cli --graph G.txt --query Q.txt --stream S.txt \
         [--algo name] [--threads N] [--batch N] [--no-inter] \
         [--timeout-ms N] [--initial] [--per-update] [--trace off|counters|full] \
         [--trace-out PATH] [--report-json PATH] [--slow-k N] \
         [--profile off|counters|on] [--quiet]\n\
         \x20      paracosm-cli explain --graph G.txt --query Q.txt --stream S.txt \
         [--algo name] [--threads N] [--top N] [--json PATH]\n\
         \x20      paracosm-cli serve --graph G.txt --stream S.txt \
         --session Q.txt[:algo[:label]] [--session ...] [--threads N] \
         [--queue N] [--policy block|shed-oldest|reject] [--budget-ms N] \
         [--report-json PATH] [--quiet] [--telemetry-addr ADDR] \
         [--stall-deadline-ms N] [--linger-ms N] [--shards N] \
         [--profile off|counters|on] [--shared-index on|off] \
         [--flight-capacity N] [--dump-flight-on-stall PATH] [--wedge-ms N]"
    );
    std::process::exit(2);
}

fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("failed to write {what} {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("{what} written to {path}");
}

/// One `--session` argument of the `serve` subcommand:
/// `path[:algo[:label]]`.
struct ServeSession {
    query_path: String,
    kind: AlgoKind,
    label: String,
}

fn parse_session(spec: &str) -> Option<ServeSession> {
    let mut parts = spec.splitn(3, ':');
    let query_path = parts.next()?.to_string();
    let kind = match parts.next() {
        Some(name) => AlgoKind::parse(name)?,
        None => AlgoKind::Symbi,
    };
    let label = parts
        .next()
        .map(str::to_string)
        .unwrap_or_else(|| format!("{}@{query_path}", kind.name()));
    Some(ServeSession {
        query_path,
        kind,
        label,
    })
}

/// Parsed `serve` options that survive past graph loading (everything the
/// graph-generic runner [`serve_with`] needs).
struct ServeOpts {
    sessions: Vec<ServeSession>,
    threads: usize,
    queue: usize,
    policy: Backpressure,
    budget: Option<Duration>,
    report_json: Option<String>,
    quiet: bool,
    telemetry_addr: Option<String>,
    stall_deadline: Duration,
    linger: Duration,
    shared_index: bool,
    flight_capacity: usize,
    dump_flight: Option<String>,
    wedge: Duration,
    profile: ProfileLevel,
}

fn serve_main(args: Vec<String>) {
    let (mut graph, mut stream) = (None, None);
    let mut sessions: Vec<ServeSession> = Vec::new();
    let mut threads = 1usize;
    let mut queue = 1024usize;
    let mut policy = Backpressure::Block;
    let mut budget = None;
    let mut report_json: Option<String> = None;
    let mut quiet = false;
    let mut telemetry_addr: Option<String> = None;
    let mut stall_deadline = Duration::from_secs(5);
    let mut linger = Duration::ZERO;
    let mut shards = 1usize;
    let mut shared_index = true;
    let mut flight_capacity = 1024usize;
    let mut dump_flight: Option<String> = None;
    let mut wedge = Duration::ZERO;
    let mut profile = ProfileLevel::Off;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--graph" => graph = Some(val()),
            "--stream" => stream = Some(val()),
            "--session" => {
                sessions.push(parse_session(&val()).unwrap_or_else(|| usage()));
            }
            "--threads" => threads = val().parse().unwrap_or_else(|_| usage()),
            "--queue" => queue = val().parse().unwrap_or_else(|_| usage()),
            "--policy" => policy = Backpressure::parse(&val()).unwrap_or_else(|| usage()),
            "--budget-ms" => {
                budget = Some(Duration::from_millis(
                    val().parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--report-json" => report_json = Some(val()),
            "--quiet" => quiet = true,
            "--telemetry-addr" => telemetry_addr = Some(val()),
            "--stall-deadline-ms" => {
                stall_deadline = Duration::from_millis(val().parse().unwrap_or_else(|_| usage()))
            }
            "--linger-ms" => {
                linger = Duration::from_millis(val().parse().unwrap_or_else(|_| usage()))
            }
            "--shards" => shards = val().parse().unwrap_or_else(|_| usage()),
            "--shared-index" => {
                shared_index = match val().as_str() {
                    "on" => true,
                    "off" => false,
                    _ => usage(),
                }
            }
            "--flight-capacity" => flight_capacity = val().parse().unwrap_or_else(|_| usage()),
            "--dump-flight-on-stall" => dump_flight = Some(val()),
            "--wedge-ms" => {
                wedge = Duration::from_millis(val().parse().unwrap_or_else(|_| usage()))
            }
            "--profile" => profile = ProfileLevel::parse(&val()).unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    let (Some(gp), Some(sp)) = (graph, stream) else {
        usage()
    };
    if sessions.is_empty() {
        eprintln!("serve: at least one --session is required");
        usage();
    }

    let g = io::load_data_graph(&gp).unwrap_or_else(|e| {
        eprintln!("failed to load graph {gp}: {e}");
        std::process::exit(1);
    });
    let s = io::load_update_stream(&sp).unwrap_or_else(|e| {
        eprintln!("failed to load stream {sp}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "paracosm-cli serve: |V|={} |E|={} stream={} sessions={} policy={} queue={queue} shards={shards}",
        g.num_vertices(),
        g.num_edges(),
        s.len(),
        sessions.len(),
        policy.name(),
    );
    let opts = ServeOpts {
        sessions,
        threads,
        queue,
        policy,
        budget,
        report_json,
        quiet,
        telemetry_addr,
        stall_deadline,
        linger,
        shared_index,
        flight_capacity,
        dump_flight,
        wedge,
        profile,
    };
    if shards > 1 {
        let sg = ShardedGraph::from_graph(ShardConfig::hash(shards), &g).unwrap_or_else(|e| {
            eprintln!("serve: invalid shard config: {e}");
            std::process::exit(1);
        });
        serve_with(sg, &s, opts)
    } else {
        serve_with(g, &s, opts)
    }
}

/// The graph-generic tail of `serve`: identical over a monolithic
/// [`DataGraph`] and a [`ShardedGraph`] (where the service drains in
/// batched multi-writer mode).
fn serve_with<G: GraphShard>(g: G, s: &UpdateStream, opts: ServeOpts) {
    let mut svc = CsmService::new(
        g,
        ServiceConfig {
            queue_capacity: opts.queue,
            policy: opts.policy,
            shared_index: opts.shared_index,
            flight_capacity: opts.flight_capacity,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("serve: {e}");
        std::process::exit(1);
    });
    for sess in opts.sessions {
        let q = io::load_query_graph(&sess.query_path).unwrap_or_else(|e| {
            eprintln!("failed to load query {}: {e}", sess.query_path);
            std::process::exit(1);
        });
        let algo = Box::new(sess.kind.build(svc.graph(), &q));
        let mut spec = SessionSpec::new(
            q,
            ParaCosmConfig::parallel(opts.threads).profiled(opts.profile),
        )
        .with_label(sess.label.clone());
        if let Some(b) = opts.budget {
            spec = spec.with_budget(b);
        }
        match svc.add_session(spec, algo, Box::new(NoopObserver)) {
            Ok(id) => eprintln!("session {id}: {} ({})", sess.label, sess.kind.name()),
            Err(e) => {
                eprintln!("failed to register session {}: {e}", sess.label);
                std::process::exit(1);
            }
        }
    }

    if let Some(addr) = &opts.telemetry_addr {
        let cfg = TelemetryConfig::new(addr.clone()).with_stall_deadline(opts.stall_deadline);
        match svc.start_telemetry(cfg) {
            Ok(h) => eprintln!("telemetry: listening on http://{}", h.local_addr()),
            Err(e) => {
                eprintln!("telemetry failed to start: {e}");
                std::process::exit(1);
            }
        }
    }

    // Clone before shutdown so the recorder outlives the service for the
    // optional post-mortem dump.
    let flight = std::sync::Arc::clone(svc.flight());
    for &u in s.updates() {
        match svc.submit(u) {
            Ok(()) => {}
            // Reject policy: the queue counts the refusal; keep serving.
            Err(CsmError::Backpressure { .. }) => {}
            Err(e) => {
                eprintln!("submit failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if opts.wedge > Duration::ZERO {
        // Artificial wedge (CI / stall-forensics demos): hold the admitted
        // updates unprocessed long enough for the watchdog to flag a
        // wedged-queue stall, then drain normally.
        eprintln!("wedging queue for {:?} before draining", opts.wedge);
        std::thread::sleep(opts.wedge);
    }
    if opts.linger > Duration::ZERO {
        // Process everything, then hold the telemetry endpoint open for
        // scrapers (CI curls the endpoints during this window).
        if let Err(e) = svc.drain() {
            eprintln!("drain failed: {e}");
            std::process::exit(1);
        }
        std::thread::sleep(opts.linger);
    }
    let report = svc.shutdown().unwrap_or_else(|e| {
        eprintln!("shutdown failed: {e}");
        std::process::exit(1);
    });

    println!(
        "admitted={} processed={} shed={} rejected={} noops={} invalid={} stalls={} elapsed={:?}",
        report.admitted,
        report.processed,
        report.shed,
        report.rejected,
        report.noops,
        report.invalid,
        report.stalls,
        report.elapsed
    );
    if !opts.quiet {
        for r in &report.sessions {
            let dims = r.session.as_ref().expect("service reports are tagged");
            println!(
                "session {} [{}] algo={}: +{} -{} updates={} overruns={} degraded={} skipped={}",
                dims.session_id,
                dims.label,
                r.algo,
                r.stats.positives,
                r.stats.negatives,
                r.stats.updates,
                dims.budget_overruns,
                dims.degraded,
                dims.skipped
            );
        }
    }
    if let Some(path) = &opts.report_json {
        write_or_die(path, &report.to_json(), "service report");
    }
    if let Some(path) = &opts.dump_flight {
        if report.stalls > 0 {
            write_or_die(path, &flight.perfetto_json(), "flight trace");
        } else {
            eprintln!("no stalls flagged; flight trace not written to {path}");
        }
    }
}

/// Attach catalog estimates to a profile snapshot (the CLI twin of the
/// telemetry plane's estimator: same arms, same catalog formulae).
fn attach_estimates(p: &mut QueryProfile, cat: &CardinalityCatalog) {
    p.apply_estimates(|d| {
        let arms: Vec<(VLabel, ELabel)> = d
            .backward
            .iter()
            .map(|b| (VLabel(b.src_vlabel), ELabel(b.elabel)))
            .collect();
        Some(cat.estimate_extension(&arms, VLabel(d.vlabel)))
    });
}

/// `paracosm-cli explain`: replay the stream with the profiler fully on,
/// rebuild the cardinality catalog over the final graph, and print the
/// oriented query edges ranked by attributed enumeration cost.
fn explain_main(args: Vec<String>) {
    let (mut graph, mut query, mut stream) = (None, None, None);
    let mut kind = AlgoKind::Symbi;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut top = usize::MAX;
    let mut json_out: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--graph" => graph = Some(val()),
            "--query" => query = Some(val()),
            "--stream" => stream = Some(val()),
            "--algo" => kind = AlgoKind::parse(&val()).unwrap_or_else(|| usage()),
            "--threads" => threads = val().parse().unwrap_or_else(|_| usage()),
            "--top" => top = val().parse().unwrap_or_else(|_| usage()),
            "--json" => json_out = Some(val()),
            _ => usage(),
        }
    }
    let (Some(gp), Some(qp), Some(sp)) = (graph, query, stream) else {
        usage()
    };
    let g = io::load_data_graph(&gp).unwrap_or_else(|e| {
        eprintln!("failed to load graph {gp}: {e}");
        std::process::exit(1);
    });
    let q = io::load_query_graph(&qp).unwrap_or_else(|e| {
        eprintln!("failed to load query {qp}: {e}");
        std::process::exit(1);
    });
    let s = io::load_update_stream(&sp).unwrap_or_else(|e| {
        eprintln!("failed to load stream {sp}: {e}");
        std::process::exit(1);
    });

    let cfg = ParaCosmConfig::parallel(threads).profiled(ProfileLevel::Full);
    let algo = kind.build(&g, &q);
    let mut engine: ParaCosm<AnyAlgorithm> = ParaCosm::new(g, q, algo, cfg);
    let out = engine.process_stream(&s).unwrap_or_else(|e| {
        eprintln!("stream failed: {e}");
        std::process::exit(1);
    });

    let mut cat = CardinalityCatalog::new();
    cat.rebuild(engine.graph());
    let report = engine.run_report(Some(out));
    let Some(mut profile) = report.profile else {
        eprintln!("explain: profiler produced no profile (internal error)");
        std::process::exit(1);
    };
    attach_estimates(&mut profile, &cat);

    let total = profile.total_cost();
    println!(
        "explain: algo={} orders={} total_cost={total}",
        kind.name(),
        profile.orders.len()
    );
    for (rank, o) in profile.ranked().iter().take(top).enumerate() {
        println!(
            "rank {rank}: order {} seed ({}-{}) elabel {} cost {} ({:.1}%) deadline_hits={}",
            o.index,
            o.seed.0,
            o.seed.1,
            o.seed_elabel,
            o.cost(),
            100.0 * o.cost() as f64 / total.max(1) as f64,
            o.deadline_hits()
        );
        for d in &o.depths {
            let obs = d
                .observed_card()
                .map(|c| format!("{c:.2}"))
                .unwrap_or_else(|| "-".to_string());
            let est = d
                .estimate
                .map(|e| format!("{e:.2}"))
                .unwrap_or_else(|| "-".to_string());
            println!(
                "  depth {}: q{} (vlabel {}) arms={} est={est} observed={obs} cost={}",
                d.depth,
                d.qvertex,
                d.vlabel,
                d.backward.len(),
                d.cost()
            );
        }
    }
    if let Some(path) = &json_out {
        let doc = format!(
            "{{\"schema_version\":1,\"source\":\"cli\",\"algo\":\"{}\",\"explain\":{}}}",
            kind.name(),
            profile.explain_json()
        );
        write_or_die(path, &doc, "explain document");
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        args.remove(0);
        return serve_main(args);
    }
    if args.first().map(String::as_str) == Some("explain") {
        args.remove(0);
        return explain_main(args);
    }
    let (mut graph, mut query, mut stream) = (None, None, None);
    let mut kind = AlgoKind::Symbi;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut batch = 1024usize;
    let mut inter = true;
    let mut timeout = None;
    let mut initial = false;
    let mut per_update = false;
    let mut trace = TraceLevel::Off;
    let mut trace_out: Option<String> = None;
    let mut report_json: Option<String> = None;
    let mut slow_k = 0usize;
    let mut quiet = false;
    let mut profile = ProfileLevel::Off;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--graph" => graph = Some(val()),
            "--query" => query = Some(val()),
            "--stream" => stream = Some(val()),
            "--algo" => kind = AlgoKind::parse(&val()).unwrap_or_else(|| usage()),
            "--threads" => threads = val().parse().unwrap_or_else(|_| usage()),
            "--batch" => batch = val().parse().unwrap_or_else(|_| usage()),
            "--no-inter" => inter = false,
            "--profile" => profile = ProfileLevel::parse(&val()).unwrap_or_else(|| usage()),
            "--timeout-ms" => {
                timeout = Some(Duration::from_millis(
                    val().parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--initial" => initial = true,
            "--per-update" => per_update = true,
            "--trace" => trace = TraceLevel::parse(&val()).unwrap_or_else(|| usage()),
            "--trace-out" => trace_out = Some(val()),
            "--report-json" => report_json = Some(val()),
            "--slow-k" => slow_k = val().parse().unwrap_or_else(|_| usage()),
            "--quiet" => quiet = true,
            // Kept for compatibility: latency tracking is now on by default.
            "--latency" => {}
            _ => usage(),
        }
    }
    let (Some(gp), Some(qp), Some(sp)) = (graph, query, stream) else {
        usage()
    };
    // Exporters need the corresponding telemetry level to have anything
    // to say; upgrade quietly rather than emitting empty files.
    if trace_out.is_some() {
        trace = TraceLevel::Full;
    } else if report_json.is_some() && trace == TraceLevel::Off {
        trace = TraceLevel::Counters;
    }

    let g = io::load_data_graph(&gp).unwrap_or_else(|e| {
        eprintln!("failed to load graph {gp}: {e}");
        std::process::exit(1);
    });
    let q = io::load_query_graph(&qp).unwrap_or_else(|e| {
        eprintln!("failed to load query {qp}: {e}");
        std::process::exit(1);
    });
    let s = io::load_update_stream(&sp).unwrap_or_else(|e| {
        eprintln!("failed to load stream {sp}: {e}");
        std::process::exit(1);
    });

    let mut cfg = ParaCosmConfig::parallel(threads)
        .with_batch_size(batch)
        .tracing(trace)
        .with_slow_k(slow_k)
        .profiled(profile);
    cfg.inter_update = inter && threads > 1;
    cfg.track_latency = !quiet;
    if let Some(t) = timeout {
        cfg = cfg.with_time_limit(t);
    }
    eprintln!(
        "paracosm-cli: algo={} |V|={} |E|={} |V(Q)|={} stream={} threads={threads} inter={}",
        kind.name(),
        g.num_vertices(),
        g.num_edges(),
        q.num_vertices(),
        s.len(),
        cfg.inter_update,
    );

    let algo = kind.build(&g, &q);
    let mut engine: ParaCosm<AnyAlgorithm> = ParaCosm::new(g, q, algo, cfg);

    if initial {
        let t0 = std::time::Instant::now();
        let r = engine.initial_matches(false);
        println!("initial matches: {} ({:?})", r.count, t0.elapsed());
    }

    let mut outcome = None;
    if per_update {
        let (mut tp, mut tn) = (0u64, 0u64);
        for (i, &u) in s.updates().iter().enumerate() {
            match engine.process_update(u) {
                Ok(out) => {
                    tp += out.positives;
                    tn += out.negatives;
                    if out.positives + out.negatives > 0 {
                        println!("update {i}: +{} -{}", out.positives, out.negatives);
                    }
                }
                Err(e) => {
                    eprintln!("update {i} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        println!("total: +{tp} -{tn}");
    } else {
        let out = engine.process_stream(&s).unwrap_or_else(|e| {
            eprintln!("stream failed: {e}");
            std::process::exit(1);
        });
        println!(
            "positives={} negatives={} applied={} timed_out={} elapsed={:?}",
            out.positives, out.negatives, out.updates_applied, out.timed_out, out.elapsed
        );
        outcome = Some(out);
    }

    if !quiet {
        let st = engine.stats();
        eprintln!(
            "stats: ads={:?} find={:?} apply={:?} nodes={}",
            st.ads_time, st.find_time, st.apply_time, st.nodes,
        );
        eprintln!("latency: {}", st.latency.summary());
        eprintln!("verdicts: {}", st.classifier.verdict_mix());
        for su in &st.slowest {
            eprintln!(
                "slow #{}: {} latency={:?} (ads={:?} apply={:?} find={:?} nodes={})",
                su.index,
                su.describe(),
                su.latency,
                su.ads,
                su.apply,
                su.find,
                su.nodes
            );
        }
    }
    if let Some(path) = &trace_out {
        write_or_die(path, &engine.tracer().perfetto_json(), "trace");
    }
    if let Some(path) = &report_json {
        write_or_die(path, &engine.run_report(outcome).to_json(), "report");
    }
}
