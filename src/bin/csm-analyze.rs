//! `csm-analyze` — the project's semantic static-analysis gate
//! (CI-blocking).
//!
//! All of the logic lives in the `csm-analyze` library crate
//! (`crates/analyze`): a hand-rolled lexer feeds an HIR-lite item/scope
//! parser, over which run the atomic-protocol checker (per-field
//! `(file, field, ordering)` budgets plus declared seqlock protocol
//! verification), the scope-aware hot-path rules, the confinement rules
//! ported from the old lexical `csm-lint`, and the cross-artifact drift
//! passes (telemetry metric names, enum/exporter exhaustiveness).
//!
//! ```text
//! csm-analyze [ROOT] [--dump | --api-dump] [--json PATH]
//! ```
//!
//! Diagnostics are `path:line: [rule] message`, exit 1 on any
//! violation, exit 2 on errors. `--json PATH` additionally writes the
//! machine-readable artifact CI uploads. `--dump` prints current counts
//! in `LINT.md` row form; `--api-dump` prints the public-API snapshot
//! in `API.md` format.

use std::process::ExitCode;

fn main() -> ExitCode {
    csm_analyze::cli_main("csm-analyze")
}
