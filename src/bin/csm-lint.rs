//! `csm-lint` — the project invariant linter (CI-gated).
//!
//! A hand-rolled, text/token-level static-analysis pass (deliberately no
//! `syn`: the rules below are lexical, and a zero-dependency binary keeps
//! the offline build trivial). It walks `crates/**/*.rs`, scrubs comments
//! and string literals, splits off test regions, and enforces:
//!
//! * **ordering-allowlist** — every atomic `Ordering::*` use must fit the
//!   per-file budget in `LINT.md`, where each row carries a one-line
//!   rationale. New atomics require a reviewed table edit.
//! * **seqcst-denied** — `Ordering::SeqCst` is denied outside the
//!   allowlist (the project's protocols are designed for AcqRel/Acquire;
//!   SeqCst usually papers over a missing design).
//! * **thread-spawn-confined** — raw `thread::spawn`/`thread::scope` only
//!   in `crates/graph/src/par.rs`, `crates/core/src/inner.rs` and
//!   `crates/service/src/telemetry.rs` (the scrape/watchdog threads); all
//!   other fork-join goes through `par::run_jobs`/`par::map_slice` (calls
//!   through the `sync::thread` facade are exempt — they are what the
//!   model checker instruments).
//! * **std-net-confined** — `std::net` only in
//!   `crates/service/src/telemetry.rs`: sockets stay out of the matching
//!   kernel, the executors, and every other library path.
//! * **subpattern-key-confined** — canonical sub-pattern key construction
//!   (`EdgePatternKey`/`TwoPathKey` literals and `::canonical` calls) only
//!   in `crates/graph/src/query.rs` (the decomposition that defines the
//!   scheme) and `crates/service/src/shared.rs` (the index that probes
//!   it); every other path consumes keys opaquely.
//! * **kernel-hot-loop** — no `Instant::now()` and no allocation patterns
//!   in `kernel.rs` outside the `LINT.md` hot-path exception table.
//! * **flight-hot-path** — the flight-recorder record path
//!   (`crates/core/src/trace/flight.rs`) is denied every allocation
//!   pattern and `Instant::now(` outright (zero budget, no exception
//!   table: cold paths belong in `trace/flight/cold.rs`), and the ring
//!   internals (`FlightShard`/`FlightSlot`) may not be named outside
//!   `crates/core/src/trace/` — everyone else records through
//!   `FlightRecorder`.
//! * **trace-local-only** — no shared-`Tracer` `count`/`event` calls in
//!   `kernel.rs`/`inner.rs`; hot paths accumulate into a `LocalTrace` and
//!   merge once per run.
//! * **unwrap-denied** — `.unwrap()`/`.expect(` in `crates/core` and
//!   `crates/graph` library paths ratcheted by per-file budgets (tests
//!   exempt).
//! * **forbid-unsafe-missing** — every `crates/*/src/lib.rs` must carry
//!   `#![forbid(unsafe_code)]`.
//!
//! Diagnostics are `path:line: [rule] message`, exit code 1 on any
//! violation. `--dump` prints current per-file counts in `LINT.md` row
//! form to make budget authoring mechanical. With no `LINT.md` at the
//! root, every budget is zero (which is what the seeded-violation gate
//! test relies on).
//!
//! `--api-dump` switches to snapshot mode: a deterministic, lexical dump
//! of the `pub` items under `crates/*/src` (same scrubber, test regions
//! excluded, `pub(crate)`/`pub(super)` skipped) in the exact format of
//! the committed `API.md`. The `api_snapshot_is_current` gate test fails
//! CI whenever the tree's public surface drifts from that file, so
//! surface changes are always a reviewed `API.md` diff.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Files allowed to spawn raw threads.
const SPAWN_ALLOWED: [&str; 3] = [
    "crates/graph/src/par.rs",
    "crates/core/src/inner.rs",
    "crates/service/src/telemetry.rs",
];

/// The only library file allowed to touch `std::net`.
const NET_ALLOWED: &str = "crates/service/src/telemetry.rs";

/// The only files allowed to *construct* canonical sub-pattern keys: the
/// query decomposition that defines the scheme, and the shared index that
/// probes it. Everywhere else consumes keys opaquely, so the
/// canonicalization rules (endpoint ordering, wildcard labels) have
/// exactly two authors and cannot silently fork.
const SUBPATTERN_ALLOWED: [&str; 2] = ["crates/graph/src/query.rs", "crates/service/src/shared.rs"];

/// Key-construction tokens confined by `subpattern-key-confined`.
const SUBPATTERN_PATTERNS: [&str; 4] = [
    "EdgePatternKey::canonical(",
    "TwoPathKey::canonical(",
    "EdgePatternKey {",
    "TwoPathKey {",
];

/// Hot-path files for the trace rule.
const TRACE_HOT_FILES: [&str; 2] = ["crates/core/src/kernel.rs", "crates/core/src/inner.rs"];

const KERNEL_FILE: &str = "crates/core/src/kernel.rs";

/// The flight-recorder record path: span recording only. Allocation and
/// `Instant::now(` are denied here outright (no budget table) — the
/// recorder is always on in `serve`, so every byte of this file is hot.
const FLIGHT_HOT_FILE: &str = "crates/core/src/trace/flight.rs";

/// Directory whose files may name the flight-ring internals.
const FLIGHT_RING_DIR: &str = "crates/core/src/trace/";

/// Ring-internal tokens confined by `flight-hot-path`: the seqlock shard
/// and slot types stay private to the trace module so the single-writer
/// protocol has exactly one author.
const FLIGHT_RING_PATTERNS: [&str; 2] = ["FlightShard", "FlightSlot"];

/// Allocation / timing patterns denied in kernel hot loops.
const KERNEL_PATTERNS: [&str; 10] = [
    "Instant::now(",
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    "String::new(",
    "String::from(",
    "format!(",
    ".to_vec(",
    "Box::new(",
    ".collect(",
];

struct Diagnostic {
    path: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

#[derive(Default)]
struct Allowlists {
    /// `(file, ordering) -> budget` from the "Ordering allowlist" table.
    ordering: BTreeMap<(String, String), usize>,
    /// `pattern -> budget` from the kernel hot-path exception table.
    kernel: BTreeMap<String, usize>,
    /// `file -> budget` from the unwrap/expect table.
    unwrap: BTreeMap<String, usize>,
}

/// Parse the markdown tables out of LINT.md. Recognized sections (by
/// `##` heading substring): "Ordering allowlist", "Kernel hot-path
/// exceptions", "Unwrap/expect budgets". Rows are `| a | b | ... |`;
/// header and `---` separator rows are skipped.
fn parse_lint_md(text: &str) -> Allowlists {
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        None,
        Ordering,
        Kernel,
        Unwrap,
    }
    let mut section = Section::None;
    let mut out = Allowlists::default();
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("##") {
            section = if t.contains("Ordering allowlist") {
                Section::Ordering
            } else if t.contains("Kernel hot-path exceptions") {
                Section::Kernel
            } else if t.contains("Unwrap/expect budgets") {
                Section::Unwrap
            } else {
                Section::None
            };
            continue;
        }
        if section == Section::None || !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.is_empty()
            || cells[0].is_empty()
            || cells[0] == "file"
            || cells[0] == "pattern"
            || cells
                .iter()
                .all(|c| c.chars().all(|ch| ch == '-' || ch == ':'))
        {
            continue;
        }
        match section {
            Section::Ordering if cells.len() >= 3 => {
                if let Ok(n) = cells[2].parse() {
                    out.ordering
                        .insert((cells[0].to_string(), cells[1].to_string()), n);
                }
            }
            Section::Kernel if cells.len() >= 2 => {
                if let Ok(n) = cells[1].parse() {
                    out.kernel.insert(cells[0].trim_matches('`').to_string(), n);
                }
            }
            Section::Unwrap if cells.len() >= 2 => {
                if let Ok(n) = cells[1].parse() {
                    out.unwrap.insert(cells[0].to_string(), n);
                }
            }
            _ => {}
        }
    }
    out
}

/// Streaming comment/string scrubber. Stripped bytes become spaces so
/// column positions (and thus substring offsets) survive.
#[derive(Default)]
struct Scrubber {
    /// Block-comment nesting depth (Rust block comments nest).
    block_depth: usize,
    /// Inside a normal `"` string.
    in_str: bool,
    /// Inside a raw string, with this many `#`s in its delimiter.
    in_raw: Option<usize>,
}

impl Scrubber {
    fn scrub_line(&mut self, line: &str) -> String {
        let b: Vec<char> = line.chars().collect();
        let mut out: Vec<char> = Vec::with_capacity(b.len());
        let mut i = 0;
        while i < b.len() {
            if self.block_depth > 0 {
                if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    self.block_depth -= 1;
                    out.extend([' ', ' ']);
                    i += 2;
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    self.block_depth += 1;
                    out.extend([' ', ' ']);
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            if self.in_str {
                if b[i] == '\\' {
                    out.extend([' ', ' ']);
                    i += 2;
                } else {
                    if b[i] == '"' {
                        self.in_str = false;
                    }
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            if let Some(hashes) = self.in_raw {
                if b[i] == '"'
                    && b[i + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&c| c == '#')
                        .count()
                        == hashes
                {
                    self.in_raw = None;
                    out.extend(std::iter::repeat_n(' ', hashes + 1));
                    i += hashes + 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            match b[i] {
                '/' if b.get(i + 1) == Some(&'/') => {
                    // Line comment: blank the rest of the line.
                    out.extend(std::iter::repeat_n(' ', b.len() - i));
                    i = b.len();
                }
                '/' if b.get(i + 1) == Some(&'*') => {
                    self.block_depth = 1;
                    out.extend([' ', ' ']);
                    i += 2;
                }
                '"' => {
                    self.in_str = true;
                    out.push(' ');
                    i += 1;
                }
                'r' | 'b' if is_raw_string_start(&b, i) => {
                    let (hashes, consumed) = raw_string_delim(&b, i);
                    self.in_raw = Some(hashes);
                    out.extend(std::iter::repeat_n(' ', consumed));
                    i += consumed;
                }
                '\'' => {
                    // Char literal vs lifetime: a char literal closes
                    // within a few chars; a lifetime never closes.
                    if b.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < b.len() && b[j] != '\'' {
                            j += 1;
                        }
                        let end = (j + 1).min(b.len());
                        out.extend(std::iter::repeat_n(' ', end - i));
                        i = end;
                    } else if b.get(i + 2) == Some(&'\'') {
                        out.extend([' ', ' ', ' ']);
                        i += 3;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        // Unterminated normal string at EOL without continuation: strings
        // can span lines in Rust only via `\` (already consumed above) or
        // raw strings; keep `in_str` as-is — multi-line literals stay
        // scrubbed either way.
        out.into_iter().collect()
    }
}

fn is_raw_string_start(b: &[char], i: usize) -> bool {
    // r"..."  r#"..."#  br"..."  b"..." is a plain byte string (the '"'
    // arm handles it next round), so only treat 'b' as raw when followed
    // by 'r'.
    let start = if b[i] == 'b' {
        if b.get(i + 1) != Some(&'r') {
            return false;
        }
        i + 2
    } else {
        i + 1
    };
    // Identifier char before 'r' means this is part of a name, not a
    // literal prefix (e.g. `for`, `attr"`... ).
    if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
        return false;
    }
    let mut j = start;
    while b.get(j) == Some(&'#') {
        j += 1;
    }
    b.get(j) == Some(&'"')
}

fn raw_string_delim(b: &[char], i: usize) -> (usize, usize) {
    let start = if b[i] == 'b' { i + 2 } else { i + 1 };
    let mut hashes = 0;
    let mut j = start;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    // consumed = prefix + hashes + opening quote
    (hashes, j + 1 - i)
}

struct ScannedFile {
    rel: String,
    /// Scrubbed lines (comments/strings blanked), 0-indexed.
    lines: Vec<String>,
    /// First line (0-indexed) of the trailing `#[cfg(test)]` region, if any.
    test_start: Option<usize>,
    /// Whole file is test/bench/example code by path.
    all_test: bool,
}

impl ScannedFile {
    fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        let cutoff = if self.all_test {
            0
        } else {
            self.test_start.unwrap_or(self.lines.len())
        };
        self.lines
            .iter()
            .take(cutoff)
            .enumerate()
            .map(|(i, l)| (i + 1, l.as_str()))
    }
}

fn scan_file(root: &Path, path: &Path) -> std::io::Result<ScannedFile> {
    let text = std::fs::read_to_string(path)?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let mut scrub = Scrubber::default();
    let lines: Vec<String> = text.lines().map(|l| scrub.scrub_line(l)).collect();
    let test_start = lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"));
    let all_test = rel
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples");
    Ok(ScannedFile {
        rel,
        lines,
        test_start,
        all_test,
    })
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// All match offsets of `pat` in `line`.
fn find_all<'a>(line: &'a str, pat: &str) -> impl Iterator<Item = usize> + 'a {
    let pat = pat.to_string();
    let mut from = 0;
    std::iter::from_fn(move || {
        let off = line[from..].find(&pat)?;
        let at = from + off;
        from = at + pat.len();
        Some(at)
    })
}

fn ident_at(line: &str, at: usize) -> &str {
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    &rest[..end]
}

fn snippet(line: &str) -> String {
    let t = line.trim();
    if t.len() > 60 {
        format!(
            "{}…",
            &t[..t
                .char_indices()
                .take(57)
                .last()
                .map_or(0, |(i, c)| i + c.len_utf8())]
        )
    } else {
        t.to_string()
    }
}

/// Normalize one scrubbed code line into an API-snapshot entry, or
/// `None` if it does not introduce a public item. Lexical on purpose:
/// the first physical line of the item, cut before any body/initializer,
/// whitespace-collapsed. Restricted visibility (`pub(crate)` etc.) is
/// not public surface and is skipped.
fn api_signature(line: &str) -> Option<String> {
    const ITEM_STARTS: [&str; 12] = [
        "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "use", "unsafe",
        "async", "union",
    ];
    let t = line.trim();
    let rest = t.strip_prefix("pub ")?;
    let first = rest.split_whitespace().next()?;
    if !ITEM_STARTS.contains(&first) {
        return None;
    }
    let mut sig = t;
    // `pub use` keeps its brace list (that IS the surface); everything
    // else is cut before the body / initializer.
    if first != "use" {
        if let Some(i) = sig.find('{') {
            sig = &sig[..i];
        }
        if !matches!(first, "fn" | "unsafe" | "async") {
            if let Some(i) = sig.find('=') {
                sig = &sig[..i];
            }
        }
    }
    let sig = sig.trim_end().trim_end_matches(';').trim_end();
    Some(sig.split_whitespace().collect::<Vec<_>>().join(" "))
}

/// Render the public-API snapshot for `root` in `API.md` format.
fn api_dump(root: &Path) -> Result<String, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!("{}: no crates/ directory here", root.display()));
    }
    let mut paths = Vec::new();
    walk_rs(&crates_dir, &mut paths).map_err(|e| format!("walk failed: {e}"))?;
    paths.sort();

    let mut out = String::from(
        "# Public API snapshot\n\n\
         One line per `pub` item under `crates/*/src`, extracted lexically by\n\
         `csm-lint --api-dump` (comments, strings and `#[cfg(test)]` regions\n\
         scrubbed; `pub(crate)`/`pub(super)` excluded; multi-line signatures\n\
         truncated to their first line). After a deliberate surface change,\n\
         regenerate with:\n\n\
         ```\n\
         cargo run --bin csm-lint -- --api-dump > API.md\n\
         ```\n\
         \n\
         The `api_snapshot_is_current` gate test (tests/lint_gate.rs) fails\n\
         when this file drifts from the tree, so every surface change lands\n\
         as a reviewed API.md diff.\n",
    );
    for path in &paths {
        let file = scan_file(root, path).map_err(|e| format!("{}: {e}", path.display()))?;
        if !file.rel.contains("/src/") {
            continue;
        }
        let items: Vec<String> = file
            .code_lines()
            .filter_map(|(_, l)| api_signature(l))
            .collect();
        if items.is_empty() {
            continue;
        }
        out.push_str(&format!("\n## {}\n\n", file.rel));
        for item in items {
            out.push_str(&format!("- `{item}`\n"));
        }
    }
    Ok(out)
}

fn run_lint(root: &Path, dump: bool) -> Result<Vec<Diagnostic>, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!("{}: no crates/ directory here", root.display()));
    }
    let allow = match std::fs::read_to_string(root.join("LINT.md")) {
        Ok(text) => parse_lint_md(&text),
        Err(_) => Allowlists::default(),
    };
    let mut paths = Vec::new();
    walk_rs(&crates_dir, &mut paths).map_err(|e| format!("walk failed: {e}"))?;
    paths.sort();

    let mut diags: Vec<Diagnostic> = Vec::new();
    // (file, ordering) -> occurrences (line numbers)
    let mut ordering_uses: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut kernel_uses: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut unwrap_uses: BTreeMap<String, Vec<usize>> = BTreeMap::new();

    for path in &paths {
        let file = scan_file(root, path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = file.rel.clone();

        // forbid-unsafe-missing: crates/*/src/lib.rs must carry the attr.
        if rel.starts_with("crates/") && rel.ends_with("/src/lib.rs") {
            let has = file
                .lines
                .iter()
                .any(|l| l.contains("#![forbid(unsafe_code)]"));
            if !has {
                diags.push(Diagnostic {
                    path: rel.clone(),
                    line: 1,
                    rule: "forbid-unsafe-missing",
                    msg: "crate root lacks #![forbid(unsafe_code)] (document any \
                          exception in LINT.md and downgrade deliberately)"
                        .into(),
                });
            }
        }

        for (lineno, line) in file.code_lines() {
            // ordering-allowlist / seqcst-denied
            for at in find_all(line, "Ordering::") {
                let ord = ident_at(line, at + "Ordering::".len());
                if ATOMIC_ORDERINGS.contains(&ord) {
                    ordering_uses
                        .entry((rel.clone(), ord.to_string()))
                        .or_default()
                        .push(lineno);
                }
            }

            // thread-spawn-confined
            for pat in ["thread::spawn(", "thread::scope("] {
                for at in find_all(line, pat) {
                    let before = &line[..at];
                    if before.ends_with("sync::") {
                        continue; // the model-checkable facade
                    }
                    if SPAWN_ALLOWED.contains(&rel.as_str()) {
                        continue;
                    }
                    diags.push(Diagnostic {
                        path: rel.clone(),
                        line: lineno,
                        rule: "thread-spawn-confined",
                        msg: format!(
                            "raw {} outside par.rs/inner.rs — use \
                             csm_graph::par::run_jobs or map_slice ({})",
                            pat.trim_end_matches('('),
                            snippet(line)
                        ),
                    });
                }
            }

            // subpattern-key-confined
            if !SUBPATTERN_ALLOWED.contains(&rel.as_str()) {
                for pat in SUBPATTERN_PATTERNS {
                    if line.contains(pat) {
                        diags.push(Diagnostic {
                            path: rel.clone(),
                            line: lineno,
                            rule: "subpattern-key-confined",
                            msg: format!(
                                "sub-pattern key construction outside query.rs/shared.rs \
                                 — consume keys opaquely; canonicalization lives in \
                                 QueryGraph::edge_pattern_keys and the shared index ({})",
                                snippet(line)
                            ),
                        });
                    }
                }
            }

            // std-net-confined
            if rel != NET_ALLOWED && line.contains("std::net") {
                diags.push(Diagnostic {
                    path: rel.clone(),
                    line: lineno,
                    rule: "std-net-confined",
                    msg: format!(
                        "std::net outside {NET_ALLOWED} — the telemetry plane is \
                         the only sanctioned socket surface ({})",
                        snippet(line)
                    ),
                });
            }

            // kernel-hot-loop
            if rel == KERNEL_FILE {
                for pat in KERNEL_PATTERNS {
                    if line.contains(pat) {
                        kernel_uses.entry(pat.to_string()).or_default().push(lineno);
                    }
                }
            }

            // flight-hot-path: zero-budget denial of allocation/timing
            // patterns in the record path, and ring-internal confinement
            // everywhere outside the trace module.
            if rel == FLIGHT_HOT_FILE {
                for pat in KERNEL_PATTERNS {
                    if line.contains(pat) {
                        diags.push(Diagnostic {
                            path: rel.clone(),
                            line: lineno,
                            rule: "flight-hot-path",
                            msg: format!(
                                "`{pat}` in the flight-recorder record path — span \
                                 recording is allocation-free by contract; move cold \
                                 work into trace/flight/cold.rs ({})",
                                snippet(line)
                            ),
                        });
                    }
                }
            } else if !rel.starts_with(FLIGHT_RING_DIR) {
                for pat in FLIGHT_RING_PATTERNS {
                    if line.contains(pat) {
                        diags.push(Diagnostic {
                            path: rel.clone(),
                            line: lineno,
                            rule: "flight-hot-path",
                            msg: format!(
                                "{pat} outside crates/core/src/trace/ — the flight \
                                 ring's seqlock internals have one author; record \
                                 through FlightRecorder instead ({})",
                                snippet(line)
                            ),
                        });
                    }
                }
            }

            // trace-local-only
            if TRACE_HOT_FILES.contains(&rel.as_str()) {
                for pat in ["tracer.count(", "tracer.event(", "tracer.gauge("] {
                    if line.contains(pat) {
                        diags.push(Diagnostic {
                            path: rel.clone(),
                            line: lineno,
                            rule: "trace-local-only",
                            msg: format!(
                                "shared Tracer call on a hot path — accumulate in a \
                                 LocalTrace and merge once per run ({})",
                                snippet(line)
                            ),
                        });
                    }
                }
            }

            // unwrap-denied (library paths of core + graph)
            if rel.starts_with("crates/core/src/") || rel.starts_with("crates/graph/src/") {
                let n = find_all(line, ".unwrap()").count() + find_all(line, ".expect(").count();
                for _ in 0..n {
                    unwrap_uses.entry(rel.clone()).or_default().push(lineno);
                }
            }
        }
    }

    if dump {
        println!("## Ordering allowlist (current counts)\n");
        println!("| file | ordering | max | rationale |");
        println!("|---|---|---|---|");
        for ((f, o), lines) in &ordering_uses {
            println!("| {f} | {o} | {} | TODO |", lines.len());
        }
        println!("\n## Kernel hot-path exceptions (current counts)\n");
        println!("| pattern | max | rationale |");
        println!("|---|---|---|");
        for (p, lines) in &kernel_uses {
            println!("| `{p}` | {} | TODO |", lines.len());
        }
        println!("\n## Unwrap/expect budgets (current counts)\n");
        println!("| file | max | rationale |");
        println!("|---|---|---|");
        for (f, lines) in &unwrap_uses {
            println!("| {f} | {} | TODO |", lines.len());
        }
    }

    // Budget enforcement: the first `max` occurrences are covered by the
    // table row; everything beyond it is reported at its own line.
    for ((f, o), lines) in &ordering_uses {
        let budget = allow.ordering.get(&(f.clone(), o.clone())).copied();
        let (rule, max): (&'static str, usize) = match (o.as_str(), budget) {
            (_, Some(max)) => ("ordering-allowlist", max),
            ("SeqCst", None) => ("seqcst-denied", 0),
            (_, None) => ("ordering-allowlist", 0),
        };
        for &lineno in lines.iter().skip(max) {
            let msg = if rule == "seqcst-denied" {
                "Ordering::SeqCst is denied outside the LINT.md allowlist — \
                 design for AcqRel/Acquire or add a justified row"
                    .to_string()
            } else if max == 0 {
                format!(
                    "Ordering::{o} not in the LINT.md ordering allowlist for {f} \
                     — add a row with a one-line rationale"
                )
            } else {
                format!(
                    "Ordering::{o} exceeds the LINT.md budget for {f} ({} uses > max {max}) \
                     — raise the budget with a rationale or drop the atomic",
                    lines.len()
                )
            };
            diags.push(Diagnostic {
                path: f.clone(),
                line: lineno,
                rule,
                msg,
            });
        }
    }

    for (pat, lines) in &kernel_uses {
        let max = allow.kernel.get(pat).copied().unwrap_or(0);
        for &lineno in lines.iter().skip(max) {
            diags.push(Diagnostic {
                path: KERNEL_FILE.to_string(),
                line: lineno,
                rule: "kernel-hot-loop",
                msg: format!(
                    "`{pat}` in the search kernel hot path (budget {max}) — hoist it \
                     out of the loop or add a LINT.md hot-path exception"
                ),
            });
        }
    }

    for (f, lines) in &unwrap_uses {
        let max = allow.unwrap.get(f).copied().unwrap_or(0);
        for &lineno in lines.iter().skip(max) {
            diags.push(Diagnostic {
                path: f.clone(),
                line: lineno,
                rule: "unwrap-denied",
                msg: format!(
                    "unwrap()/expect() in a library path ({} uses > budget {max}) — \
                     return a Result or document the invariant and bump the \
                     LINT.md budget",
                    lines.len()
                ),
            });
        }
    }

    diags.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(diags)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut dump = false;
    let mut api = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--dump" => dump = true,
            "--api-dump" => api = true,
            "--help" | "-h" => {
                println!("usage: csm-lint [ROOT] [--dump | --api-dump]");
                println!("  checks project invariants over ROOT/crates/**/*.rs");
                println!("  budgets and allowlists come from ROOT/LINT.md");
                println!("  --api-dump prints the public-API snapshot (API.md format)");
                return ExitCode::SUCCESS;
            }
            other => root = PathBuf::from(other),
        }
    }
    if api {
        return match api_dump(&root) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("csm-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    match run_lint(&root, dump) {
        Err(e) => {
            eprintln!("csm-lint: {e}");
            ExitCode::from(2)
        }
        Ok(diags) if diags.is_empty() => {
            if !dump {
                println!("csm-lint: OK");
            }
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.msg);
            }
            eprintln!("csm-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
    }
}
