//! `csm-lint` — compatibility wrapper over the `csm-analyze` engine.
//!
//! The original lexical linter that lived here has been superseded by
//! the semantic analyzer in `crates/analyze` (hand-rolled lexer →
//! HIR-lite item/scope parser → atomic-protocol / hot-path / drift
//! passes). This binary keeps the historical name, flags, and output
//! conventions working for scripts and muscle memory:
//!
//! ```text
//! csm-lint [ROOT] [--dump | --api-dump] [--json PATH]
//! ```
//!
//! Diagnostics, exit codes, and the `--dump`/`--api-dump` formats are
//! those of `csm-analyze`; see `crates/analyze/src/lib.rs` for the rule
//! inventory and `LINT.md` for the budget tables.

use std::process::ExitCode;

fn main() -> ExitCode {
    csm_analyze::cli_main("csm-lint")
}
