#!/usr/bin/env python3
"""Bench-artifact regression gate (EXPERIMENTS.md, "Bench artifacts").

Discovers committed baselines by glob — every ``BENCH_*.json`` in the
baseline directory — instead of hard-coding filenames, so adding a new
gated experiment means committing one artifact file and (usually) no CI
edits. Each baseline file is the ``repro --json-out`` envelope::

    {"schema_version": 1, "artifacts": [ {"experiment": "...", ...}, ... ]}

Fresh artifacts produced by the CI run are matched to baselines by the
``experiment`` field, never by filename. Per-experiment rules:

* ``shared``  — deterministic counters (distinct/hits/misses/subpatterns)
  must match the baseline exactly; each cell's off/on speedup must not
  drop below the baseline beyond both runs' noise floors plus a margin.
* ``shards``  — deterministic accounting (applied_ops/processed/
  edges_final) exact; speedup floors as above; the committed baseline
  itself must show the >= 2.5x dense hash-4 headline win.
* ``profile`` — every arm must reproduce the baseline's deterministic
  ``positives`` exactly; the Off arms' mutual delta must sit within the
  sweep's noise floor; the ``counters`` arm's overhead must stay within
  the 5% budget plus the fresh run's noise floor (checked on the
  committed baseline too, so a dishonest baseline can't slip through).

Usage::

    bench_gate.py --fresh FILE [FILE ...] [--baseline-dir DIR]
                  [--require EXPERIMENT [EXPERIMENT ...]]

Exits non-zero with a failure list on any regression, schema violation,
fresh artifact without a baseline, or missing required experiment.
"""

import argparse
import glob
import json
import os
import sys

SPEEDUP_MARGIN = 0.25  # smoke-scale slack on ratio comparisons
COUNTERS_BUDGET_PCT = 5.0  # the profiler's counters-arm overhead budget


def load_artifacts(path):
    """Return the artifact objects in one --json-out envelope."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        raise ValueError(f"{path}: schema_version {doc.get('schema_version')!r} != 1")
    arts = doc.get("artifacts")
    if not isinstance(arts, list) or not arts:
        raise ValueError(f"{path}: missing or empty 'artifacts' array")
    for a in arts:
        if "experiment" not in a:
            raise ValueError(f"{path}: artifact without 'experiment' field")
    return arts


def check_config(base, fresh, keys, failures, exp):
    for k in keys:
        if base.get(k) != fresh.get(k):
            failures.append(
                f"{exp}: config mismatch on {k!r}: fresh {fresh.get(k)!r} "
                f"!= baseline {base.get(k)!r}"
            )


def check_speedup(base_cell, fresh_cell, name, failures, exp):
    tol = (base_cell["noise_pct"] + fresh_cell["noise_pct"]) / 100.0 + SPEEDUP_MARGIN
    floor = base_cell["speedup"] * (1.0 - tol)
    if fresh_cell["speedup"] < floor:
        failures.append(
            f"{exp}/{name}: speedup {fresh_cell['speedup']:.2f} < floor "
            f"{floor:.2f} (baseline {base_cell['speedup']:.2f}, tolerance {tol:.0%})"
        )


def gate_shared(base, fresh, failures):
    check_config(base, fresh, ("seed", "stream_len", "reps"), failures, "shared")
    bcells = {(c["sessions"], c["overlap"]): c for c in base["cells"]}
    if len(bcells) != len(fresh["cells"]):
        failures.append(
            f"shared: cell count {len(fresh['cells'])} != baseline {len(bcells)}"
        )
        return
    for f in fresh["cells"]:
        key = (f["sessions"], f["overlap"])
        b = bcells.get(key)
        cell = f"{f['sessions']}x{f['overlap']}"
        if b is None:
            failures.append(f"shared/{cell}: cell missing from baseline")
            continue
        # Same seed, sequential sessions: these are deterministic.
        for k in ("distinct", "hits", "misses", "subpatterns"):
            if f[k] != b[k]:
                failures.append(f"shared/{cell}: {k} {f[k]} != baseline {b[k]}")
        check_speedup(b, f, cell, failures, "shared")


def gate_shards(base, fresh, failures):
    check_config(base, fresh, ("seed", "stream_len", "reps"), failures, "shards")
    key = lambda c: (c["workload"], c["partitioner"], c["shards"])
    bcells = {key(c): c for c in base["cells"]}
    if len(bcells) != len(fresh["cells"]):
        failures.append(
            f"shards: cell count {len(fresh['cells'])} != baseline {len(bcells)}"
        )
        return
    headline = bcells.get(("dense", "hash", 4))
    if headline is None:
        failures.append("shards: baseline lost the dense hash-4 headline cell")
    elif headline["speedup"] < 2.5:
        failures.append(
            f"shards: committed dense hash-4 speedup {headline['speedup']:.2f} < 2.5"
        )
    for f in fresh["cells"]:
        b = bcells.get(key(f))
        cell = "/".join(str(k) for k in key(f))
        if b is None:
            failures.append(f"shards/{cell}: cell missing from baseline")
            continue
        # Same seed, single-writer appliers in admission order: these are
        # deterministic.
        for k in ("applied_ops", "processed", "edges_final"):
            if f[k] != b[k]:
                failures.append(f"shards/{cell}: {k} {f[k]} != baseline {b[k]}")
        check_speedup(b, f, cell, failures, "shards")


def profile_arms_ok(art, who, failures):
    """Self-consistency of one profile artifact (baseline or fresh)."""
    arms = {a["arm"]: a for a in art["arms"]}
    for need in ("off_a", "off_b", "counters", "full"):
        if need not in arms:
            failures.append(f"profile[{who}]: missing arm {need!r}")
            return None
    positives = {a["positives"] for a in art["arms"]}
    if len(positives) != 1:
        failures.append(
            f"profile[{who}]: arms disagree on positives: {sorted(positives)}"
        )
    for a in art["arms"]:
        if a["level"] == "off" and a["total_cost"] != 0:
            failures.append(f"profile[{who}]/{a['arm']}: Off arm attributed cost")
        if a["level"] != "off" and a["total_cost"] == 0:
            failures.append(f"profile[{who}]/{a['arm']}: profiled arm has zero cost")
    floor = art["noise_pct"]
    off_b = arms["off_b"]["overhead_pct"]
    if off_b > floor + 1e-9:
        failures.append(
            f"profile[{who}]: off_b delta {off_b:.2f}% exceeds noise floor {floor:.2f}%"
        )
    counters = arms["counters"]["overhead_pct"]
    budget = COUNTERS_BUDGET_PCT + floor
    if counters > budget:
        failures.append(
            f"profile[{who}]: counters overhead {counters:.2f}% > budget "
            f"{budget:.2f}% (5% + {floor:.2f}% noise floor)"
        )
    return arms


def gate_profile(base, fresh, failures):
    check_config(base, fresh, ("seed", "stream_len", "reps"), failures, "profile")
    barms = profile_arms_ok(base, "baseline", failures)
    farms = profile_arms_ok(fresh, "fresh", failures)
    if barms is None or farms is None:
        return
    # Same seed, same stream: match totals are deterministic across
    # machines, unlike the timings.
    bp, fp = barms["off_a"]["positives"], farms["off_a"]["positives"]
    if bp != fp:
        failures.append(f"profile: positives {fp} != baseline {bp}")


GATES = {"shared": gate_shared, "shards": gate_shards, "profile": gate_profile}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", nargs="+", required=True, help="fresh --json-out files")
    ap.add_argument("--baseline-dir", default=".", help="directory holding BENCH_*.json")
    ap.add_argument(
        "--require",
        nargs="*",
        default=[],
        help="experiments that must appear among the fresh artifacts",
    )
    args = ap.parse_args()

    baseline_files = sorted(glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))
    if not baseline_files:
        print(f"bench gate: no BENCH_*.json baselines under {args.baseline_dir}")
        return 1

    baselines = {}
    for path in baseline_files:
        for art in load_artifacts(path):
            exp = art["experiment"]
            if exp in baselines:
                print(f"bench gate: experiment {exp!r} in two baselines")
                return 1
            baselines[exp] = (os.path.basename(path), art)

    failures = []
    gated = []
    for path in args.fresh:
        for art in load_artifacts(path):
            exp = art["experiment"]
            if exp not in baselines:
                failures.append(
                    f"{exp}: fresh artifact has no committed BENCH_*.json baseline"
                )
                continue
            if exp not in GATES:
                failures.append(f"{exp}: no gate rule registered for this experiment")
                continue
            GATES[exp](baselines[exp][1], art, failures)
            gated.append(f"{exp} (vs {baselines[exp][0]})")

    for exp in args.require:
        if not any(g.startswith(f"{exp} ") for g in gated):
            failures.append(f"{exp}: required experiment missing from fresh artifacts")

    if failures:
        print("bench gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"bench gate OK: {len(gated)} artifact(s) gated: {', '.join(gated)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
