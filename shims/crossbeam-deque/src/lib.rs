//! Offline stand-in for `crossbeam-deque`.
//!
//! Provides the [`Injector`] / [`Steal`] surface the inner-update
//! executor uses. The real crate's injector is a lock-free Michael–Scott
//! style FIFO; this shim is a `Mutex<VecDeque>`. That is a *throughput*
//! downgrade under heavy contention, not a *semantics* change: `steal`
//! still returns each pushed task exactly once, and `Steal::Retry` is
//! reported when the lock is contended so callers' backoff loops behave
//! as written.
//!
//! The mutex comes from the `checksched::sync` facade: a plain
//! `std::sync::Mutex` in normal builds, and a scheduler-instrumented one
//! under `--cfg paracosm_check` so model runs can permute the order in
//! which workers hit `push`/`steal`/`is_empty`.

#![forbid(unsafe_code)]

use checksched::sync::{Mutex, PoisonError, TryLockError};
use std::collections::VecDeque;

/// Result of a steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One task was dequeued.
    Success(T),
    /// Transient contention; try again.
    Retry,
}

impl<T> Steal<T> {
    /// Convert to `Option`, mapping both `Empty` and `Retry` to `None`.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

/// A FIFO task injector shared by all workers.
#[derive(Debug, Default)]
pub struct Injector<T> {
    q: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// New empty injector.
    pub fn new() -> Self {
        Injector {
            q: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueue a task.
    pub fn push(&self, task: T) {
        // A worker that panicked mid-push leaves the queue structurally
        // intact (VecDeque::push_back is atomic w.r.t. panics), so poison
        // carries no information here.
        self.q
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(task);
    }

    /// Attempt to dequeue a task.
    pub fn steal(&self) -> Steal<T> {
        match self.q.try_lock() {
            Ok(mut q) => match q.pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
            Err(TryLockError::WouldBlock) => Steal::Retry,
            Err(TryLockError::Poisoned(e)) => {
                let mut q = e.into_inner();
                match q.pop_front() {
                    Some(t) => Steal::Success(t),
                    None => Steal::Empty,
                }
            }
        }
    }

    /// Is the queue empty right now? (Racy, like the original.)
    pub fn is_empty(&self) -> bool {
        match self.q.try_lock() {
            Ok(q) => q.is_empty(),
            // Contended ⇒ someone is pushing or stealing; report non-empty
            // so idle workers keep polling rather than parking early.
            Err(_) => false,
        }
    }

    /// Approximate queue length.
    pub fn len(&self) -> usize {
        match self.q.try_lock() {
            Ok(q) => q.len(),
            Err(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let inj = Injector::new();
        assert_eq!(inj.steal(), Steal::<u32>::Empty);
        inj.push(1);
        inj.push(2);
        assert!(!inj.is_empty());
        assert_eq!(inj.steal(), Steal::Success(1));
        assert_eq!(inj.steal(), Steal::Success(2));
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn concurrent_steals_partition_tasks() {
        let inj = Arc::new(Injector::new());
        const N: usize = 10_000;
        for i in 0..N {
            inj.push(i);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let inj = Arc::clone(&inj);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match inj.steal() {
                        Steal::Success(t) => got.push(t),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => break,
                    }
                }
                got
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..N).collect::<Vec<_>>());
    }
}
