//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the small slice of `rand` it actually uses: a
//! deterministic seedable generator (`StdRng`), uniform ranges via
//! `Rng::gen_range`, Bernoulli draws via `Rng::gen_bool`, and
//! Fisher–Yates `SliceRandom::shuffle`. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically solid and, crucially,
//! fully deterministic for a given `seed_from_u64` input, which is all
//! the test-and-datagen call sites require.
//!
//! Distribution details (rejection sampling bounds, float conversion)
//! intentionally mirror rand 0.8 only in *contract* (uniformity,
//! inclusivity), not bit-for-bit output.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from simple seeds.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one `u64`.
    fn seed_from_u64(state: u64) -> Self;

    /// Seed from ambient entropy. Offline shim: derives from the system
    /// clock — *not* cryptographic, fine for randomized testing.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

/// The standard generator: xoshiro256++ (public domain algorithm by
/// Blackman & Vigna), state expanded from the seed with SplitMix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Debiased uniform draw in `[0, span)`; `span == 0` means the full
/// 64-bit range (Lemire's multiply-shift with short-zone rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128).wrapping_mul(span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// A range a `Rng` can sample uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform value; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as u128)
                    .wrapping_sub(s as u128)
                    .wrapping_add(1) as u64; // 0 ⇒ full 64-bit domain
                s.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        if p >= 1.0 {
            return true;
        }
        (0.0f64..1.0).sample_single(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Slice extensions (Fisher–Yates shuffle, uniform choice).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// In-place uniform shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64(rng, self.len() as u64) as usize])
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let f: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let i: i64 = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&i));
            let k: u8 = rng.gen_range(0u8..=255);
            let _ = k;
        }
    }

    #[test]
    fn gen_bool_extremes_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_small_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
