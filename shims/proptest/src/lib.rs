//! Offline stand-in for `proptest` (API subset, no shrinking).
//!
//! The build environment cannot reach a crates.io registry, so this
//! crate vendors the slice of proptest the workspace's property tests
//! use: the [`proptest!`] macro (with `proptest_config` header and
//! multiple `pattern in strategy` bindings), [`strategy::Strategy`] with
//! `prop_map` / `prop_flat_map` / `prop_filter`, integer and float
//! range strategies, tuple strategies, [`collection::vec`],
//! [`prelude::Just`], `any::<T>()`, `prop_oneof!`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case reports its case index and seed;
//!   inputs are reproducible because sampling is fully deterministic
//!   (seeded per test-function name).
//! * Value generation draws from the workspace's vendored xoshiro
//!   `StdRng`, so byte-for-byte case streams differ from upstream.

#![forbid(unsafe_code)]

use rand::prelude::*;

/// Test-case failure plumbing used by the generated test bodies.
pub mod test_runner {
    /// Why a single case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failed assertion / explicit rejection.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Runner configuration; only `cases` is honored by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65_536,
        }
    }
}

/// Macro-expansion plumbing: user crates depend on `proptest` but not
/// necessarily on `rand`, so the generated code paths go through here.
#[doc(hidden)]
pub mod __rt {
    pub use rand::{SeedableRng, StdRng};
}

/// FNV-1a; stable per-test seeds derived from the test function's name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Strategies: deterministic value sources.
pub mod strategy {
    use super::*;
    use std::ops::Range;

    /// Cap on consecutive `prop_filter` rejections before the case aborts.
    const FILTER_RETRIES: u32 = 10_000;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Reject values failing `pred` (resampling, bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            let mid = self.inner.generate(rng);
            (self.f)(mid).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter exhausted {FILTER_RETRIES} retries: {}",
                self.reason
            );
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64, f32);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    #[derive(Clone)]
    pub struct OneOf<S>(pub Vec<S>);

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
            let i = rng.gen_range(0..self.0.len());
            self.0[i].generate(rng)
        }
    }

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// See [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::prelude::*;
    use std::ops::Range;

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `element`-generated values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, OneOf, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($s),+])
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...)` body runs
/// `config.cases` times with deterministically sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                $(let $pat = ($strat).generate(&mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respected(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_vecs((a, b) in (0u32..10, 0u32..10), v in collection::vec(0u32..4, 0..9)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn flat_map_dependent(v in (1u32..6).prop_flat_map(|n| (Just(n), 0u32..6))) {
            let (n, _x) = v;
            prop_assert!((1..6).contains(&n));
        }

        #[test]
        fn filter_holds(x in (0u32..100).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn early_return_ok(x in 0u32..10) {
            if x > 100 {
                return Ok(());
            }
            prop_assert!(x < 10);
        }

        #[test]
        fn oneof_selects_variants(k in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&k));
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
