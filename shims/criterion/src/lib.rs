//! Offline stand-in for `criterion` (API subset).
//!
//! Implements the bench-definition surface the workspace's benches use
//! — `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! throughput, bench_function, bench_with_input, finish}`,
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — over a simple
//! wall-clock measurement loop (calibrated iteration batches, median of
//! samples) instead of criterion's statistical machinery. Results print
//! as one line per benchmark:
//!
//! ```text
//! bench group/id ... median 12.345 µs/iter (n=10, min 11.8, max 13.1)
//! ```
//!
//! Supports `cargo bench -- <substring>` filtering like the original.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Target wall-clock spent measuring one benchmark (all samples).
const TARGET_MEASURE: Duration = Duration::from_millis(300);

/// A benchmark identifier: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group name prefixes it at print time).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (reported alongside the time).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing collector handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` `self.iters` times and record the total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Run one closure under the calibrated sampling loop; returns the
/// median per-iteration time.
fn measure<F: FnMut(&mut Bencher)>(samples: u64, mut f: F) -> (Duration, Duration, Duration) {
    // Calibration: one iteration to estimate the per-iter cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let est = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = TARGET_MEASURE / (samples as u32).max(1);
    let iters = (per_sample.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed / iters as u32);
    }
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    (median, per_iter[0], *per_iter.last().unwrap())
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let (median, min, max) = measure(self.sample_size, f);
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
                format!(", {:.0} elem/s", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
                format!(", {:.0} B/s", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "bench {full} ... median {}/iter (n={}, min {}, max {}{tp})",
            fmt_duration(median),
            self.sample_size,
            fmt_duration(min),
            fmt_duration(max),
        );
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id.clone(), |b| f(b));
        self
    }

    /// Benchmark a closure over one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra; parity with criterion).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters; flag-style args (e.g. the
        // `--bench` cargo appends) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(BenchmarkId { id: id.to_string() }, f);
        g.finish();
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_runs_and_orders() {
        let (median, min, max) = measure(4, |b| b.iter(|| black_box(1 + 1)));
        assert!(min <= median && median <= max);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_function("a", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }
}
