//! Offline stand-in for `crossbeam-utils`: just [`Backoff`], the
//! exponential spin-then-yield helper the worker loops use while the
//! shared injector is empty.

#![forbid(unsafe_code)]

use std::cell::Cell;

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff for spin loops.
#[derive(Debug, Default)]
pub struct Backoff {
    step: Cell<u32>,
}

impl Backoff {
    /// Fresh backoff at the cheapest step.
    pub fn new() -> Self {
        Backoff { step: Cell::new(0) }
    }

    /// Reset to the cheapest step (call after useful work was found).
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Busy-spin, escalating exponentially.
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..1u32 << step {
            std::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Spin while cheap, then yield the thread to the scheduler.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Has the backoff escalated past the point where spinning helps?
    /// Callers should park or block instead.
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_then_completes() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
