//! The cfg-gated synchronization facade.
//!
//! Concurrent code in the workspace imports atomics, `Mutex`, and thread
//! primitives from here (usually via the `csm-check` re-export) instead of
//! `std::sync`. In a normal build every name is a verbatim `std` re-export
//! — zero cost, zero behavior change. Under `--cfg paracosm_check` the
//! atomics and `Mutex` become wrappers that call
//! [`sched::yield_point`](crate::sched::yield_point) before every
//! operation, so a model run can permute the order in which threads hit
//! them. `Ordering` arguments are accepted and ignored by the wrappers:
//! the checker explores sequentially consistent interleavings only (weak
//! memory is the ThreadSanitizer job's department).

/// Atomic types and memory orderings.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(paracosm_check))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

    #[cfg(paracosm_check)]
    pub use shimmed::{AtomicBool, AtomicU64, AtomicUsize};

    #[cfg(paracosm_check)]
    mod shimmed {
        use super::Ordering;
        use crate::sched::yield_point;
        use std::sync::{Mutex, PoisonError};

        fn get<T: Copy>(m: &Mutex<T>) -> T {
            *m.lock().unwrap_or_else(PoisonError::into_inner)
        }

        fn update<T: Copy, R>(m: &Mutex<T>, f: impl FnOnce(&mut T) -> R) -> R {
            let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
            f(&mut g)
        }

        macro_rules! shim_int_atomic {
            ($name:ident, $ty:ty) => {
                /// Scheduler-instrumented stand-in for the `std` atomic of
                /// the same name. Every operation is a yield point.
                #[derive(Debug, Default)]
                pub struct $name {
                    v: Mutex<$ty>,
                }

                impl $name {
                    pub const fn new(v: $ty) -> Self {
                        Self { v: Mutex::new(v) }
                    }

                    pub fn load(&self, _: Ordering) -> $ty {
                        yield_point();
                        get(&self.v)
                    }

                    pub fn store(&self, val: $ty, _: Ordering) {
                        yield_point();
                        update(&self.v, |v| *v = val);
                    }

                    pub fn swap(&self, val: $ty, _: Ordering) -> $ty {
                        yield_point();
                        update(&self.v, |v| std::mem::replace(v, val))
                    }

                    pub fn fetch_add(&self, val: $ty, _: Ordering) -> $ty {
                        yield_point();
                        update(&self.v, |v| {
                            let old = *v;
                            *v = v.wrapping_add(val);
                            old
                        })
                    }

                    pub fn fetch_sub(&self, val: $ty, _: Ordering) -> $ty {
                        yield_point();
                        update(&self.v, |v| {
                            let old = *v;
                            *v = v.wrapping_sub(val);
                            old
                        })
                    }

                    pub fn fetch_max(&self, val: $ty, _: Ordering) -> $ty {
                        yield_point();
                        update(&self.v, |v| {
                            let old = *v;
                            *v = old.max(val);
                            old
                        })
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $ty,
                        new: $ty,
                        _: Ordering,
                        _: Ordering,
                    ) -> Result<$ty, $ty> {
                        yield_point();
                        update(&self.v, |v| {
                            if *v == current {
                                *v = new;
                                Ok(current)
                            } else {
                                Err(*v)
                            }
                        })
                    }

                    pub fn into_inner(self) -> $ty {
                        self.v.into_inner().unwrap_or_else(PoisonError::into_inner)
                    }

                    pub fn get_mut(&mut self) -> &mut $ty {
                        self.v.get_mut().unwrap_or_else(PoisonError::into_inner)
                    }
                }
            };
        }

        shim_int_atomic!(AtomicU64, u64);
        shim_int_atomic!(AtomicUsize, usize);

        /// Scheduler-instrumented stand-in for `std::sync::atomic::AtomicBool`.
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            v: Mutex<bool>,
        }

        impl AtomicBool {
            pub const fn new(v: bool) -> Self {
                Self { v: Mutex::new(v) }
            }

            pub fn load(&self, _: Ordering) -> bool {
                yield_point();
                get(&self.v)
            }

            pub fn store(&self, val: bool, _: Ordering) {
                yield_point();
                update(&self.v, |v| *v = val);
            }

            pub fn swap(&self, val: bool, _: Ordering) -> bool {
                yield_point();
                update(&self.v, |v| std::mem::replace(v, val))
            }

            pub fn into_inner(self) -> bool {
                self.v.into_inner().unwrap_or_else(PoisonError::into_inner)
            }
        }
    }
}

// The guard and error types are always the `std` ones: the instrumented
// `Mutex` below is a thin wrapper whose `lock` still hands out a real
// `std::sync::MutexGuard`, so downstream poison handling is identical in
// both build modes.
pub use std::sync::{LockResult, MutexGuard, PoisonError, TryLockError, TryLockResult};

#[cfg(not(paracosm_check))]
pub use std::sync::Mutex;

/// Scheduler-instrumented `Mutex`: acquisition spins on `try_lock` with a
/// yield point per attempt, so the model scheduler controls who wins a
/// contended lock. Outside a model run the `WouldBlock` branch falls back
/// to `std::thread::yield_now`, preserving liveness for ordinary tests
/// compiled under `--cfg paracosm_check`.
#[cfg(paracosm_check)]
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

#[cfg(paracosm_check)]
impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(t),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        loop {
            crate::sched::yield_point();
            match self.inner.try_lock() {
                Ok(g) => return Ok(g),
                Err(TryLockError::Poisoned(p)) => return Err(p),
                Err(TryLockError::WouldBlock) => {
                    if !crate::sched::in_model() {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        crate::sched::yield_point();
        self.inner.try_lock()
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

/// Thread spawning/joining for protocol models. Normal builds re-export
/// `std::thread`; under `--cfg paracosm_check`, spawns that happen inside
/// a model run create scheduler-controlled threads instead.
pub mod thread {
    #[cfg(not(paracosm_check))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(paracosm_check)]
    pub use shimmed::{spawn, yield_now, JoinHandle};

    #[cfg(paracosm_check)]
    mod shimmed {
        use crate::sched;
        use std::any::Any;

        /// Either a scheduler-controlled model thread or a plain OS thread,
        /// depending on whether the spawn happened inside a model run.
        pub enum JoinHandle<T> {
            Model(sched::JoinHandle<T>),
            Os(std::thread::JoinHandle<T>),
        }

        impl<T> JoinHandle<T> {
            pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
                match self {
                    JoinHandle::Model(h) => {
                        sched::join(h).map_err(|msg| Box::new(msg) as Box<dyn Any + Send>)
                    }
                    JoinHandle::Os(h) => h.join(),
                }
            }
        }

        pub fn spawn<T, F>(f: F) -> JoinHandle<T>
        where
            T: Send + 'static,
            F: FnOnce() -> T + Send + 'static,
        {
            if sched::in_model() {
                JoinHandle::Model(sched::spawn(f))
            } else {
                JoinHandle::Os(std::thread::spawn(f))
            }
        }

        pub fn yield_now() {
            if sched::in_model() {
                sched::yield_point();
            } else {
                std::thread::yield_now();
            }
        }
    }
}
