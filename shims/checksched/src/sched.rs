//! The seeded deterministic scheduler.
//!
//! A *model run* ([`model`]) executes a closure in a controlled world:
//! threads created through [`spawn`] are real OS threads, but a single
//! execution token serializes them. Every yield point ([`yield_point`] —
//! called by the `sync` facade's instrumented atomics and mutexes) offers
//! the token to a pseudo-randomly chosen runnable thread. The RNG is
//! seeded per run, so a schedule is a pure function of the seed: failures
//! replay exactly.
//!
//! Outside a model run every entry point is an inert no-op, which lets the
//! same binaries (built with `--cfg paracosm_check`) run ordinary
//! concurrent tests unmodified.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Hard per-run bound on scheduling steps. A correct small model needs a
/// few thousand; exhausting the budget means a livelock (e.g. a worker
/// spinning on a wakeup that can never arrive) and fails the run.
pub const DEFAULT_STEP_BUDGET: u64 = 500_000;

/// One schedule-exploration failure: the seed that produced it plus the
/// first panic message observed under that schedule.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The schedule seed; rerun with `PARACOSM_CHECK_SEED=<seed>` to replay.
    pub seed: u64,
    /// Panic/diagnostic message from the failing run.
    pub message: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule seed {} failed: {} (replay: PARACOSM_CHECK_SEED={})",
            self.seed, self.message, self.seed
        )
    }
}

/// Summary of one successful model run.
#[derive(Debug, Clone)]
pub struct RunInfo {
    /// Yield points taken.
    pub steps: u64,
    /// The exact sequence of thread ids granted the token (the schedule).
    /// Identical for identical seeds — the replay guarantee.
    pub schedule: Vec<usize>,
}

#[derive(Default)]
struct State {
    active: bool,
    /// Threads ready to receive the token (token holder excluded).
    runnable: Vec<usize>,
    /// Current token holder.
    current: Option<usize>,
    finished: Vec<bool>,
    /// Per-target list of threads blocked joining it.
    joiners: Vec<Vec<usize>>,
    /// Registered, unfinished model threads.
    live: usize,
    rng: u64,
    steps: u64,
    budget: u64,
    failure: Option<String>,
    schedule: Vec<usize>,
}

impl State {
    fn fresh(seed: u64) -> State {
        State {
            active: true,
            rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            budget: DEFAULT_STEP_BUDGET,
            ..State::default()
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: tiny, seedable, and never reaches zero from a
        // nonzero state.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Remove and return a random runnable thread, recording the choice.
    fn pick_runnable(&mut self) -> usize {
        debug_assert!(!self.runnable.is_empty());
        let idx = (self.next_u64() % self.runnable.len() as u64) as usize;
        let id = self.runnable.swap_remove(idx);
        self.schedule.push(id);
        id
    }
}

struct Sched {
    st: Mutex<State>,
    cv: Condvar,
}

fn sched() -> &'static Sched {
    static S: OnceLock<Sched> = OnceLock::new();
    S.get_or_init(|| Sched {
        st: Mutex::new(State::default()),
        cv: Condvar::new(),
    })
}

fn lock(s: &Sched) -> MutexGuard<'_, State> {
    // A panicking model thread is normal business (that is how failures
    // surface); poisoning carries no information here.
    s.st.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Is the calling thread part of an active model run?
pub fn in_model() -> bool {
    TID.with(|t| t.get()).is_some()
}

/// A scheduling point: hand the token to a seeded-random runnable thread
/// (possibly ourselves) and block until it comes back. No-op outside a
/// model run.
pub fn yield_point() {
    let Some(me) = TID.with(|t| t.get()) else {
        return;
    };
    let s = sched();
    let mut st = lock(s);
    if !st.active {
        return;
    }
    st.steps += 1;
    if st.steps > st.budget && st.failure.is_none() {
        st.failure = Some(format!(
            "step budget ({}) exhausted — livelock or lost wakeup",
            st.budget
        ));
    }
    if st.failure.is_none() && !st.runnable.is_empty() {
        st.runnable.push(me);
        let next = st.pick_runnable();
        st.current = Some(next);
        s.cv.notify_all();
        while st.current != Some(me) {
            st = s.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
    let fail = st.failure.clone();
    drop(st);
    if let Some(msg) = fail {
        panic!("checksched: {msg}");
    }
}

/// Handle to a model thread created by [`spawn`].
pub struct JoinHandle<T> {
    id: usize,
    result: Arc<Mutex<Option<Result<T, String>>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

impl<T> JoinHandle<T> {
    /// The model-thread id (index into the run's schedule log).
    pub fn id(&self) -> usize {
        self.id
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn record_failure(msg: &str) {
    let s = sched();
    let mut st = lock(s);
    if st.failure.is_none() {
        st.failure = Some(msg.to_string());
    }
}

fn finish_thread(id: usize) {
    let s = sched();
    let mut st = lock(s);
    st.finished[id] = true;
    st.live -= 1;
    let joiners = std::mem::take(&mut st.joiners[id]);
    st.runnable.extend(joiners);
    if st.current == Some(id) {
        st.current = None;
        if !st.runnable.is_empty() {
            let next = st.pick_runnable();
            st.current = Some(next);
        }
    }
    s.cv.notify_all();
}

/// Spawn a model thread. Must be called from inside a model run; the child
/// becomes schedulable immediately and first runs when the scheduler picks
/// it. The spawn itself is a yield point.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    assert!(
        in_model(),
        "checksched::spawn called outside a model run (use std threads instead)"
    );
    let s = sched();
    let id = {
        let mut st = lock(s);
        let id = st.finished.len();
        st.finished.push(false);
        st.joiners.push(Vec::new());
        st.live += 1;
        st.runnable.push(id);
        id
    };
    let result: Arc<Mutex<Option<Result<T, String>>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let os = std::thread::spawn(move || {
        TID.with(|t| t.set(Some(id)));
        // Wait for the first token grant.
        {
            let s = sched();
            let mut st = lock(s);
            while st.current != Some(id) {
                st = s.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            let fail = st.failure.clone();
            drop(st);
            if let Some(msg) = fail {
                // The run already failed: finish without running the body.
                *slot.lock().unwrap_or_else(PoisonError::into_inner) =
                    Some(Err(format!("run already failed: {msg}")));
                finish_thread(id);
                return;
            }
        }
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => {
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
            }
            Err(p) => {
                let msg = panic_message(p);
                record_failure(&msg);
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(Err(msg));
            }
        }
        finish_thread(id);
    });
    yield_point();
    JoinHandle {
        id,
        result,
        os: Some(os),
    }
}

/// Join a model thread: give up the token until the target finishes, then
/// return its result (`Err` carries the target's panic message).
pub fn join<T>(mut h: JoinHandle<T>) -> Result<T, String> {
    let me = TID
        .with(|t| t.get())
        .expect("checksched::join outside a model run");
    let s = sched();
    let mut st = lock(s);
    while !st.finished[h.id] {
        if st.runnable.is_empty() {
            let msg = "deadlock: every model thread is blocked".to_string();
            if st.failure.is_none() {
                st.failure = Some(msg.clone());
            }
            drop(st);
            panic!("checksched: {msg}");
        }
        st.joiners[h.id].push(me);
        let next = st.pick_runnable();
        st.current = Some(next);
        s.cv.notify_all();
        while st.current != Some(me) {
            st = s.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(msg) = st.failure.clone() {
            drop(st);
            panic!("checksched: {msg}");
        }
    }
    drop(st);
    if let Some(os) = h.os.take() {
        // The model-level join happened; the OS thread is exiting or gone.
        let _ = os.join();
    }
    h.result
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
        .unwrap_or_else(|| Err("model thread finished without a result".to_string()))
}

fn run_lock() -> MutexGuard<'static, ()> {
    static RUN: Mutex<()> = Mutex::new(());
    RUN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Run `f` as the root of a model run under the schedule derived from
/// `seed`. Panics inside the run (from any model thread) are captured and
/// returned as a [`Failure`] naming the seed.
pub fn model<F: FnOnce()>(seed: u64, f: F) -> Result<RunInfo, Failure> {
    let _serialize = run_lock();
    let s = sched();
    {
        let mut st = lock(s);
        let mut fresh = State::fresh(seed);
        fresh.finished.push(false);
        fresh.joiners.push(Vec::new());
        fresh.live = 1;
        fresh.current = Some(0);
        *st = fresh;
    }
    TID.with(|t| t.set(Some(0)));
    let out = catch_unwind(AssertUnwindSafe(f));
    if let Err(p) = &out {
        // Record before finishing so stragglers abort promptly.
        record_failure(&panic_message_ref(p));
    }
    finish_thread(0);
    // Drain stragglers (only reachable on failure paths — a correct model
    // closure joins everything it spawned).
    {
        let mut st = lock(s);
        while st.live > 0 {
            if st.current.is_none() && !st.runnable.is_empty() {
                let next = st.pick_runnable();
                st.current = Some(next);
                s.cv.notify_all();
            }
            st = s.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.active = false;
    }
    TID.with(|t| t.set(None));
    let (failure, steps, schedule) = {
        let mut st = lock(s);
        (
            st.failure.take(),
            st.steps,
            std::mem::take(&mut st.schedule),
        )
    };
    match (out, failure) {
        (Ok(()), None) => Ok(RunInfo { steps, schedule }),
        (_, Some(message)) => Err(Failure { seed, message }),
        (Err(p), None) => Err(Failure {
            seed,
            message: panic_message(p),
        }),
    }
}

fn panic_message_ref(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Explore `seeds` distinct schedules of `f` (seeds `0..seeds`), stopping
/// at the first failure. Environment overrides:
///
/// * `PARACOSM_CHECK_SEED=<n>` — replay exactly one seed (failure repro);
/// * `PARACOSM_CHECK_ITERS=<n>` — override the seed count.
///
/// Returns the number of schedules explored.
pub fn explore<F: Fn()>(seeds: u64, f: F) -> Result<u64, Failure> {
    if let Some(seed) = env_u64("PARACOSM_CHECK_SEED") {
        model(seed, &f)?;
        return Ok(1);
    }
    let n = env_u64("PARACOSM_CHECK_ITERS").unwrap_or(seeds);
    for seed in 0..n {
        model(seed, &f)?;
    }
    Ok(n)
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn model_runs_closure_and_joins_threads() {
        let info = model(7, || {
            let h = spawn(|| 21u64);
            let v = join(h).expect("child ok");
            assert_eq!(v, 21);
        })
        .expect("model run ok");
        assert!(info.steps >= 1);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            model(1234, || {
                let a = spawn(|| {
                    for _ in 0..10 {
                        yield_point();
                    }
                });
                let b = spawn(|| {
                    for _ in 0..10 {
                        yield_point();
                    }
                });
                join(a).unwrap();
                join(b).unwrap();
            })
            .expect("ok")
        };
        let first = run();
        let second = run();
        assert_eq!(first.schedule, second.schedule);
        assert!(!first.schedule.is_empty());
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let run = |seed| {
            model(seed, || {
                let a = spawn(|| {
                    for _ in 0..20 {
                        yield_point();
                    }
                });
                let b = spawn(|| {
                    for _ in 0..20 {
                        yield_point();
                    }
                });
                join(a).unwrap();
                join(b).unwrap();
            })
            .expect("ok")
            .schedule
        };
        let distinct: std::collections::HashSet<Vec<usize>> = (0..16).map(run).collect();
        assert!(distinct.len() > 1, "16 seeds produced a single schedule");
    }

    #[test]
    fn child_panic_is_reported_with_seed() {
        let err = model(99, || {
            let h = spawn(|| panic!("boom from child"));
            let _ = join(h);
            yield_point();
        })
        .expect_err("must fail");
        assert_eq!(err.seed, 99);
        assert!(err.message.contains("boom"), "message: {}", err.message);
    }

    #[test]
    fn explore_finds_a_seeded_race() {
        // A deliberately racy check-then-act: with some schedules both
        // threads observe 0 and both "win".
        let winners = AtomicU64::new(0);
        let found = explore(64, || {
            let flag = Arc::new(AtomicU64::new(0));
            let mk = |flag: Arc<AtomicU64>| {
                spawn(move || {
                    yield_point();
                    let seen = flag.load(Ordering::SeqCst);
                    yield_point(); // the racy window
                    if seen == 0 {
                        flag.store(1, Ordering::SeqCst);
                        1u64
                    } else {
                        0
                    }
                })
            };
            let a = mk(Arc::clone(&flag));
            let b = mk(Arc::clone(&flag));
            let w = join(a).unwrap() + join(b).unwrap();
            assert!(w <= 1, "both threads won the check-then-act race");
        });
        // Either some schedule triggered the race (expected) …
        if let Err(f) = found {
            assert!(f.message.contains("race"), "unexpected: {f}");
        } else {
            // … or the RNG never interleaved the window in 64 tries, which
            // would itself be a scheduler bug worth failing on.
            panic!("64 schedules never interleaved a 2-step window");
        }
        let _ = winners;
    }

    #[test]
    fn outside_model_everything_is_inert() {
        assert!(!in_model());
        yield_point(); // no-op, must not panic
    }
}
