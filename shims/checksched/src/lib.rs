//! # checksched — deterministic concurrency checking for the workspace
//!
//! A vendored, no-dependency stand-in for a loom/shuttle-style model
//! checker. It has two halves:
//!
//! * [`sched`] — a seeded, token-passing deterministic scheduler. Model
//!   threads run on real OS threads, but exactly one holds the execution
//!   token at any instant; every synchronization operation is a *yield
//!   point* where a seeded RNG picks which runnable thread goes next.
//!   Running the same seed replays the same interleaving exactly, so a
//!   failure report is a one-line repro (`PARACOSM_CHECK_SEED=<n>`).
//! * [`sync`] — the facade the workspace's concurrent code is written
//!   against. In a normal build it re-exports `std::sync` types verbatim
//!   (zero cost, zero behavior change). Under `--cfg paracosm_check` the
//!   atomics and `Mutex` become scheduler-instrumented wrappers, turning
//!   every test that drives the protocol into a schedule-exploration
//!   harness.
//!
//! ## Scope and honesty
//!
//! The checker explores interleavings of synchronization *operations*
//! under sequential consistency. It finds protocol races — lost wakeups,
//! bad termination checks, double delivery, missed-counter merges — which
//! is where streaming-matcher bugs live. It does **not** model weak-memory
//! reordering; that is what the ThreadSanitizer CI job is for (see
//! DESIGN.md §3.8).

#![forbid(unsafe_code)]

pub mod sched;
pub mod sync;
