//! Quickstart: continuous subgraph matching in five minutes.
//!
//! Builds a small labeled social graph, registers a triangle query, and
//! streams edge updates through ParaCOSM-hosted Symbi, printing the
//! incremental matches each update produces.
//!
//! Run with: `cargo run --release --example quickstart`

use paracosm::prelude::*;

fn main() {
    // ---- 1. The data graph G: people (label 0) and groups (label 1).
    let mut g = DataGraph::new();
    let alice = g.add_vertex(VLabel(0));
    let bob = g.add_vertex(VLabel(0));
    let carol = g.add_vertex(VLabel(0));
    let dave = g.add_vertex(VLabel(0));
    // "follows" edges carry label 0.
    g.insert_edge(alice, bob, ELabel(0)).unwrap();
    g.insert_edge(bob, carol, ELabel(0)).unwrap();
    g.insert_edge(carol, dave, ELabel(0)).unwrap();

    // ---- 2. The query Q: a triangle of people — mutual-follow cliques.
    let mut q = QueryGraph::new();
    let u0 = q.add_vertex(VLabel(0));
    let u1 = q.add_vertex(VLabel(0));
    let u2 = q.add_vertex(VLabel(0));
    q.add_edge(u0, u1, ELabel(0)).unwrap();
    q.add_edge(u1, u2, ELabel(0)).unwrap();
    q.add_edge(u0, u2, ELabel(0)).unwrap();

    // ---- 3. Host Symbi (DCS index) in ParaCOSM with 4 threads.
    let algo = Symbi::new();
    let cfg = ParaCosmConfig::parallel(4).collecting();
    let mut engine = ParaCosm::new(g, q, algo, cfg);

    println!("initial matches: {}", engine.initial_matches(false).count);

    // ---- 4. Stream updates; each insertion reports the *new* matches.
    let updates = [
        (alice, carol), // closes the triangle alice-bob-carol
        (bob, dave),    // closes bob-carol-dave
        (alice, dave),  // closes two more triangles? let's see
    ];
    for (a, b) in updates {
        let out = engine
            .process_update(Update::InsertEdge(EdgeUpdate::new(a, b, ELabel(0))))
            .expect("valid update");
        println!(
            "+e({a},{b}): {} new matches (mappings incl. automorphisms)",
            out.positives
        );
        for m in &out.matches {
            println!("    {:?}", m.as_slice());
        }
    }

    // ---- 5. Deletions report disappearing matches.
    let out = engine
        .process_update(Update::DeleteEdge(EdgeUpdate::new(alice, bob, ELabel(0))))
        .expect("valid update");
    println!("-e({alice},{bob}): {} matches disappeared", out.negatives);

    let s = engine.stats();
    println!(
        "\nstats: {} updates, {} positive / {} negative matches, {} search nodes",
        s.updates, s.positives, s.negatives, s.nodes
    );
}
