//! Live telemetry plane end-to-end: stand up a [`CsmService`] with two
//! standing queries, start the HTTP scrape endpoint on a loopback port,
//! stream churn through the service while scraping `/metrics`, `/healthz`
//! and `/sessions` over plain TCP, peek at the flight recorder's causal
//! spans via `/debug/flight`, and finally reconcile the scraped
//! per-session `_total` counters against the shutdown [`ServiceReport`].
//!
//! Run with: `cargo run --release --example telemetry_scrape`

use paracosm::prelude::*;
use rand::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One blocking HTTP/1.1 GET against the telemetry endpoint; returns the
/// response body (curl in ten lines — the endpoint speaks to anything).
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("telemetry endpoint is up");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: paracosm\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    match resp.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => resp,
    }
}

fn main() {
    // A labeled graph, a triangle session and an edge-watch session.
    let g = synth::generate(&SynthConfig {
        n_vertices: 1_500,
        n_edges: 6_000,
        n_vlabels: 2,
        n_elabels: 1,
        alpha: 0.7,
        seed: 17,
    });
    let mut tri = QueryGraph::new();
    let a = tri.add_vertex(VLabel(0));
    let b = tri.add_vertex(VLabel(0));
    let c = tri.add_vertex(VLabel(1));
    tri.add_edge(a, b, ELabel(0)).unwrap();
    tri.add_edge(b, c, ELabel(0)).unwrap();
    tri.add_edge(a, c, ELabel(0)).unwrap();
    let mut edge = QueryGraph::new();
    let x = edge.add_vertex(VLabel(0));
    let y = edge.add_vertex(VLabel(1));
    edge.add_edge(x, y, ELabel(0)).unwrap();

    let mut svc = CsmService::new(g, ServiceConfig::default()).unwrap();
    let mut cfg = ParaCosmConfig::sequential();
    cfg.track_latency = true;
    let tri_algo = Box::new(Symbi::new());
    svc.add_session(
        SessionSpec::new(tri, cfg.clone()).with_label("triangles"),
        tri_algo,
        Box::new(NoopObserver),
    )
    .unwrap();
    let edge_algo = Box::new(GraphFlow::new());
    svc.add_session(
        SessionSpec::new(edge, cfg).with_label("edge-watch"),
        edge_algo,
        Box::new(NoopObserver),
    )
    .unwrap();

    // Port 0: the OS picks a free port; the handle reports what was bound.
    let telemetry = svc
        .start_telemetry(
            TelemetryConfig::new("127.0.0.1:0")
                .with_window(WindowConfig {
                    epoch_width: Duration::from_millis(250),
                    num_epochs: 40,
                })
                .with_stall_deadline(Duration::from_secs(2)),
        )
        .unwrap();
    let addr = telemetry.local_addr();
    println!("telemetry: http://{addr}/metrics");
    println!("healthz:   {}", http_get(addr, "/healthz").trim());

    // Churn: inserts of fresh edges, deletions of stream-created ones.
    let mut rng = StdRng::seed_from_u64(9);
    let n = svc.graph().vertex_slots() as u32;
    let mut present: Vec<(VertexId, VertexId)> = Vec::new();
    let mut submitted = 0u64;
    while submitted < 4_000 {
        let u = if !present.is_empty() && rng.gen_bool(0.4) {
            let (x, y) = present.swap_remove(rng.gen_range(0..present.len()));
            Update::DeleteEdge(EdgeUpdate::new(x, y, ELabel(0)))
        } else {
            let x = VertexId(rng.gen_range(0..n));
            let y = VertexId(rng.gen_range(0..n));
            if x == y || svc.graph().has_edge(x, y) {
                continue;
            }
            present.push((x, y));
            Update::InsertEdge(EdgeUpdate::new(x, y, ELabel(0)))
        };
        svc.submit(u).unwrap();
        submitted += 1;
        if submitted.is_multiple_of(1_000) {
            svc.drain().unwrap();
            // Scrape mid-stream: pick out this session's windowed p99.
            let metrics = http_get(addr, "/metrics");
            let p99 = metrics
                .lines()
                .find(|l| {
                    l.starts_with("paracosm_session_window_latency_seconds")
                        && l.contains("triangles")
                        && l.contains("quantile=\"0.99\"")
                })
                .unwrap_or("(no samples yet)");
            println!("[{submitted:>5}] {p99}");
        }
    }
    svc.drain().unwrap();

    // The JSON snapshot carries per-session ladder state and window rates.
    let sessions = http_get(addr, "/sessions");
    println!("sessions snapshot: {} bytes of JSON", sessions.len());

    // The flight recorder is always on: every processed update minted a
    // causal span, and /debug/flight dumps the retained stage events.
    let flight = http_get(addr, "/debug/flight");
    let minted = flight
        .split_once("\"spans_minted\":")
        .and_then(|(_, rest)| {
            rest.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse::<u64>()
                .ok()
        })
        .expect("flight dump carries spans_minted");
    assert_eq!(minted, submitted, "one causal span per processed update");
    println!(
        "flight recorder: {} spans minted, {} bytes of /debug/flight",
        minted,
        flight.len()
    );

    // Reconciliation: scraped lifetime totals equal the shutdown report.
    let metrics = http_get(addr, "/metrics");
    let scraped_updates: u64 = metrics
        .lines()
        .find(|l| l.starts_with("paracosm_session_updates_total") && l.contains("triangles"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("triangles session is exported");
    let report = svc.shutdown().unwrap();
    assert_eq!(report.processed, submitted);
    assert_eq!(scraped_updates, report.sessions[0].stats.updates);
    println!(
        "reconciled: scraped updates_total={} == report updates={} (+{} -{})",
        scraped_updates,
        report.sessions[0].stats.updates,
        report.sessions[0].stats.positives,
        report.sessions[0].stats.negatives,
    );
}
