//! Plugging a *custom* CSM algorithm into ParaCOSM — the paper's headline
//! usability claim (§4, Fig. 5): provide a traversal routine and a
//! filtering rule, and the framework parallelizes the rest.
//!
//! We implement a tiny label-index algorithm ("LabelCount"): its ADS is a
//! per-label degree histogram per vertex — weaker than DCS/DCG but enough
//! to show the full plug-in surface: `rebuild`, `update_ads` with honest
//! change reporting, `is_candidate`, and the default traversal.
//!
//! The example then verifies the custom algorithm against a built-in
//! baseline on the same stream and shows it riding both executors.
//!
//! Run with: `cargo run --release --example custom_algorithm`

use paracosm::prelude::*;

/// The custom ADS: `counts[v][label]` = number of v's neighbors per label.
struct LabelCount {
    counts: Vec<Vec<u32>>,
    /// Per query vertex: required neighbor-label multiset, as counts.
    required: Vec<Vec<u32>>,
    n_labels: usize,
}

impl LabelCount {
    fn new() -> Self {
        LabelCount {
            counts: Vec::new(),
            required: Vec::new(),
            n_labels: 0,
        }
    }
}

impl CsmAlgorithm for LabelCount {
    fn name(&self) -> &'static str {
        "LabelCount"
    }

    fn rebuild(&mut self, g: &DataGraph, q: &QueryGraph) {
        self.n_labels = (0..g.vertex_slots())
            .filter(|&i| g.is_alive(VertexId::from(i)))
            .map(|i| g.label(VertexId::from(i)).0 as usize + 1)
            .max()
            .unwrap_or(1)
            .max(
                q.vertices()
                    .map(|u| q.label(u).0 as usize + 1)
                    .max()
                    .unwrap_or(1),
            );
        self.counts = vec![vec![0; self.n_labels]; g.vertex_slots()];
        for v in g.vertices() {
            for &(w, _) in g.neighbors(v) {
                self.counts[v.index()][g.label(w).0 as usize] += 1;
            }
        }
        self.required = q
            .vertices()
            .map(|u| {
                let mut req = vec![0u32; self.n_labels];
                for &(nb, _) in q.neighbors(u) {
                    req[q.label(nb).0 as usize] += 1;
                }
                req
            })
            .collect();
    }

    fn update_ads(
        &mut self,
        g: &DataGraph,
        q: &QueryGraph,
        e: EdgeUpdate,
        is_insert: bool,
    ) -> AdsChange {
        if self.counts.len() < g.vertex_slots() {
            self.rebuild(g, q);
            return AdsChange::Changed;
        }
        // The histogram only matters where a query vertex could care:
        // labels outside every `required` set never flip a candidacy.
        let mut changed = false;
        for (v, w) in [(e.src, e.dst), (e.dst, e.src)] {
            let wl = g.label(w).0 as usize;
            if wl >= self.n_labels {
                continue;
            }
            let relevant = self
                .required
                .iter()
                .zip(q.vertices())
                .any(|(req, u)| req[wl] > 0 && q.label(u) == g.label(v));
            let c = &mut self.counts[v.index()][wl];
            let before_ok = *c; // track the raw count, report honest change
            if is_insert {
                *c += 1;
            } else {
                *c = c.saturating_sub(1);
            }
            if relevant && *c != before_ok {
                changed = true;
            }
        }
        AdsChange::from_changed(changed)
    }

    fn is_candidate(&self, _: &DataGraph, _: &QueryGraph, u: QVertexId, v: VertexId) -> bool {
        let req = &self.required[u.index()];
        let have = &self.counts[v.index()];
        req.iter().zip(have).all(|(r, h)| h >= r)
    }

    /// Traversal routine: reuse the shared kernel (the framework default),
    /// shown here explicitly to illustrate the override point.
    fn search(
        &self,
        ctx: &SearchCtx<'_>,
        emb: &mut Embedding,
        depth: usize,
        sink: &mut dyn MatchSink,
        stats: &mut SearchStats,
    ) -> bool {
        paracosm::core::kernel::extend(
            ctx,
            &paracosm::core::AdsCandidates(self),
            emb,
            depth,
            sink,
            stats,
        )
    }
}

fn main() {
    let g = synth::generate(&SynthConfig {
        n_vertices: 800,
        n_edges: 4000,
        n_vlabels: 4,
        n_elabels: 1,
        alpha: 0.6,
        seed: 77,
    });
    // A labeled path query.
    let q = paracosm::datagen::shapes::path(&[0, 1, 2, 1], 0);

    // Build a small stream of random insertions.
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(5);
    let mut stream = UpdateStream::default();
    let n = g.vertex_slots() as u32;
    while stream.len() < 500 {
        let a = VertexId(rng.gen_range(0..n));
        let b = VertexId(rng.gen_range(0..n));
        if a != b && !g.has_edge(a, b) {
            stream.push(Update::InsertEdge(EdgeUpdate::new(a, b, ELabel(0))));
        }
    }

    // The custom algorithm under full ParaCOSM (both parallelism levels).
    let mut custom = ParaCosm::new(
        g.clone(),
        q.clone(),
        LabelCount::new(),
        ParaCosmConfig::parallel(4).with_batch_size(64),
    );
    let custom_out = custom.process_stream(&stream).expect("stream");

    // Reference: built-in Symbi, sequential.
    let mut reference = ParaCosm::new(g, q, Symbi::new(), ParaCosmConfig::sequential());
    let ref_out = reference.process_stream(&stream).expect("stream");

    println!(
        "custom LabelCount: +{} matches   (classifier: {:.2}% safe)",
        custom_out.positives,
        100.0 - custom.stats().classifier.unsafe_pct()
    );
    println!("built-in Symbi:    +{} matches", ref_out.positives);
    assert_eq!(
        custom_out.positives, ref_out.positives,
        "a correct plug-in must agree with the baselines"
    );
    println!("\nagreement verified — the plug-in contract holds.");
}
