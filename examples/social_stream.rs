//! Real-time recommendation motifs on a social stream (the paper's §1
//! motivation, after Twitter's online motif detection): watch for
//! *wedge-closing* diamond motifs over a high-rate follow stream, and
//! compare ParaCOSM's batch executor against naive per-update processing.
//!
//! This example exercises the **inter-update** machinery end to end: the
//! LiveJournal-like stand-in dataset, the 10 % edge-sampled stream, the
//! three-stage safe-update classifier, and the deferral semantics.
//!
//! Run with: `cargo run --release --example social_stream`

use paracosm::prelude::*;
use std::time::Instant;

fn main() {
    // Amazon stand-in at XS scale (6 labels — motifs actually recur), with
    // a 10 % insertion stream and a 20 % deletion tail (churn: people
    // unfollow too).
    let mut wcfg = WorkloadConfig::paper_cell(DatasetKind::Amazon, Scale::Xs, 4);
    wcfg.stream = StreamConfig {
        insert_fraction: 0.10,
        delete_fraction: 0.2,
        seed: 11,
    };
    wcfg.n_queries = 1; // one 4-vertex motif extracted from the graph itself
    let w = datagen::build_workload(&wcfg);

    // The motif: a 4-vertex pattern extracted from the live graph (so it is
    // guaranteed to occur), e.g. a co-purchase wedge/diamond.
    let q = w.queries.first().expect("extracted motif").clone();

    println!(
        "graph: |V|={} |E|={}  stream: {} updates ({} inserts, {} deletes)",
        w.initial.num_vertices(),
        w.initial.num_edges(),
        w.stream.len(),
        w.stream.num_edge_insertions(),
        w.stream.num_edge_deletions()
    );

    // ---- Naive: one update at a time, no classifier.
    let mut naive = ParaCosm::new(
        w.initial.clone(),
        q.clone(),
        NewSP::new(),
        ParaCosmConfig::sequential(),
    );
    let t0 = Instant::now();
    let naive_out = naive.process_stream(&w.stream).expect("stream");
    let naive_time = t0.elapsed();

    // ---- ParaCOSM: batch executor + inner-update parallelism.
    let mut para = ParaCosm::new(
        w.initial.clone(),
        q.clone(),
        NewSP::new(),
        ParaCosmConfig::parallel(4).with_batch_size(256),
    );
    let t1 = Instant::now();
    let para_out = para.process_stream(&w.stream).expect("stream");
    let para_time = t1.elapsed();

    assert_eq!(
        (naive_out.positives, naive_out.negatives),
        (para_out.positives, para_out.negatives),
        "both engines must report identical motif deltas"
    );

    println!(
        "\nmotifs appeared: {}   motifs expired: {}",
        para_out.positives, para_out.negatives
    );
    println!("naive per-update processing: {naive_time:?}");
    println!("ParaCOSM batch executor:     {para_time:?}");
    println!(
        "(wall-clock comparison is host-dependent: the batch executor's wins \
         come from spreading classification/application over cores and \
         skipping Find_Matches at scale — see `repro fig11` for the measured \
         inter-update speedup on the Orkut workload)"
    );

    let c = para.stats().classifier;
    println!(
        "\nclassifier: {} updates -> {:.2}% label-safe, {:.2}% degree-safe, \
         {:.2}% ADS-safe, {:.2}% unsafe",
        c.total,
        100.0 * c.safe_label as f64 / c.total.max(1) as f64,
        100.0 * c.safe_degree as f64 / c.total.max(1) as f64,
        100.0 * c.safe_ads as f64 / c.total.max(1) as f64,
        c.unsafe_pct()
    );
    println!(
        "Find_Matches was skipped for {} of {} updates — the paper's \
         inter-update win (§4.2)",
        c.safe_total(),
        c.total
    );
}
