//! Multi-tenant serving: several standing queries share one evolving
//! graph behind a [`CsmService`]. Each session has its own algorithm,
//! configuration, observer and (optionally) a per-update time budget;
//! the service applies every admitted update to the graph once and fans
//! the classifier + `Find_Matches` out across all sessions.
//!
//! The example registers four tenants, streams edge churn through a
//! bounded admission queue, removes one tenant live (its final report
//! comes back from `remove_session`), and cross-checks one tenant's ΔM
//! against a standalone single-query engine over the same stream.
//!
//! Run with: `cargo run --release --example multi_tenant`

use paracosm::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A per-tenant observer sharing live counters with the main thread —
/// the kind of hook a real deployment would point at its alerting.
struct DeltaWatch {
    delta_m: Arc<AtomicU64>,
    skipped: Arc<AtomicU64>,
}

impl StreamObserver for DeltaWatch {
    fn on_update(&mut self, obs: &UpdateObservation) {
        self.delta_m.fetch_add(obs.delta_m(), Ordering::Relaxed);
        if obs.skipped {
            self.skipped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn triangle() -> QueryGraph {
    let mut q = QueryGraph::new();
    let u: Vec<_> = (0..3).map(|_| q.add_vertex(VLabel(0))).collect();
    q.add_edge(u[0], u[1], ELabel(0)).unwrap();
    q.add_edge(u[1], u[2], ELabel(0)).unwrap();
    q.add_edge(u[0], u[2], ELabel(0)).unwrap();
    q
}

fn wedge() -> QueryGraph {
    let mut q = QueryGraph::new();
    let a = q.add_vertex(VLabel(0));
    let b = q.add_vertex(VLabel(1));
    let c = q.add_vertex(VLabel(0));
    q.add_edge(a, b, ELabel(0)).unwrap();
    q.add_edge(b, c, ELabel(0)).unwrap();
    q
}

fn edge_query() -> QueryGraph {
    let mut q = QueryGraph::new();
    let a = q.add_vertex(VLabel(1));
    let b = q.add_vertex(VLabel(1));
    q.add_edge(a, b, ELabel(0)).unwrap();
    q
}

fn main() {
    // A small two-label graph plus a deterministic churn stream.
    let g = synth::generate(&SynthConfig {
        n_vertices: 300,
        n_edges: 900,
        n_vlabels: 2,
        n_elabels: 1,
        alpha: 0.6,
        seed: 7,
    });
    let n = g.vertex_slots() as u32;
    let mut updates = Vec::new();
    for i in 0..1_500u32 {
        let a = VertexId((i * 37 + 11) % n);
        let b = VertexId((i * 53 + 29) % n);
        if a == b {
            continue;
        }
        if g.has_edge(a, b) || updates.len() % 5 == 4 {
            updates.push(Update::DeleteEdge(EdgeUpdate::new(a, b, ELabel(0))));
        } else {
            updates.push(Update::InsertEdge(EdgeUpdate::new(a, b, ELabel(0))));
        }
    }
    let stream: UpdateStream = updates.into_iter().collect();

    let mut svc = CsmService::new(
        g.clone(),
        ServiceConfig {
            queue_capacity: 256,
            policy: Backpressure::Block,
            shared_index: true,
            flight_capacity: 1024,
        },
    )
    .expect("valid service config");

    // Tenant 1: triangles via GraphFlow, with a live ΔM watch.
    let tri_delta = Arc::new(AtomicU64::new(0));
    let tri = svc
        .add_session(
            SessionSpec::new(triangle(), ParaCosmConfig::sequential()).with_label("triangles"),
            Box::new(AlgoKind::GraphFlow.build(&g, &triangle())),
            Box::new(DeltaWatch {
                delta_m: Arc::clone(&tri_delta),
                skipped: Arc::new(AtomicU64::new(0)),
            }),
        )
        .expect("register triangles");

    // Tenant 2: label-crossing wedges via Symbi.
    let _wedges = svc
        .add_session(
            SessionSpec::new(wedge(), ParaCosmConfig::sequential()).with_label("wedges"),
            Box::new(AlgoKind::Symbi.build(&g, &wedge())),
            Box::new(NoopObserver),
        )
        .expect("register wedges");

    // Tenant 3: same-label edges via TurboFlux — removed mid-stream.
    let edges = svc
        .add_session(
            SessionSpec::new(edge_query(), ParaCosmConfig::sequential()).with_label("edges"),
            Box::new(AlgoKind::TurboFlux.build(&g, &edge_query())),
            Box::new(NoopObserver),
        )
        .expect("register edges");

    // Tenant 4: triangles again, but with an absurdly tight per-update
    // budget — the degradation ladder steps it down to count-only and
    // then skipped, which its observer sees as `skipped` flags.
    let tight_skipped = Arc::new(AtomicU64::new(0));
    let tight = svc
        .add_session(
            SessionSpec::new(triangle(), ParaCosmConfig::sequential())
                .with_label("tight-budget")
                .with_budget(Duration::from_nanos(1)),
            Box::new(AlgoKind::GraphFlow.build(&g, &triangle())),
            Box::new(DeltaWatch {
                delta_m: Arc::new(AtomicU64::new(0)),
                skipped: Arc::clone(&tight_skipped),
            }),
        )
        .expect("register tight-budget");

    println!(
        "serving {} sessions over |V|={} |E|={}",
        svc.session_count(),
        g.num_vertices(),
        g.num_edges()
    );

    // Stream the first half, then deregister the edges tenant live: the
    // service drains in-flight updates first, so the departing tenant's
    // report covers everything admitted while it was registered.
    let half = stream.len() / 2;
    for &u in &stream.updates()[..half] {
        svc.submit(u).expect("admission");
    }
    let edge_report = svc.remove_session(edges).expect("edges session is live");
    let edims = edge_report.session.as_ref().unwrap();
    println!(
        "tenant {} [{}] left after {} updates: +{} -{}",
        edims.session_id,
        edims.label,
        edge_report.stats.updates,
        edge_report.stats.positives,
        edge_report.stats.negatives
    );

    for &u in &stream.updates()[half..] {
        svc.submit(u).expect("admission");
    }
    let report = svc.shutdown().expect("drains cleanly");

    println!(
        "\nservice: admitted={} processed={} noops={} invalid={} in {:?}",
        report.admitted, report.processed, report.noops, report.invalid, report.elapsed
    );
    for r in &report.sessions {
        let dims = r.session.as_ref().unwrap();
        println!(
            "tenant {} [{:>12}] algo={:>9}: +{:<6} -{:<6} verdicts: {}",
            dims.session_id,
            dims.label,
            r.algo,
            r.stats.positives,
            r.stats.negatives,
            r.stats.classifier.verdict_mix()
        );
        if dims.session_id == tight {
            println!(
                "   degradation: overruns={} degraded={} skipped={} (observer saw {} skips)",
                dims.budget_overruns,
                dims.degraded,
                dims.skipped,
                tight_skipped.load(Ordering::Relaxed)
            );
        }
    }

    // Cross-check: the triangles tenant's ΔM must match a standalone
    // single-query engine fed the same stream (classifiers prune work,
    // never results).
    let mut solo = ParaCosm::new(
        g.clone(),
        triangle(),
        AlgoKind::GraphFlow.build(&g, &triangle()),
        ParaCosmConfig::sequential(),
    );
    let solo_out = solo.process_stream(&stream).expect("valid stream");
    let tri_report = report
        .sessions
        .iter()
        .find(|r| r.session.as_ref().unwrap().session_id == tri)
        .unwrap();
    assert_eq!(tri_report.stats.positives, solo_out.positives);
    assert_eq!(tri_report.stats.negatives, solo_out.negatives);
    assert_eq!(
        tri_delta.load(Ordering::Relaxed),
        solo_out.positives + solo_out.negatives
    );
    println!(
        "\naudit: triangles tenant matches standalone run (+{} -{})",
        solo_out.positives, solo_out.negatives
    );
}
