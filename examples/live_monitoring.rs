//! Live pattern monitoring: drive a churn stream through the engine with a
//! [`StreamObserver`] hooked into `run_stream`, printing a
//! rolling dashboard — windowed p50/p99 latency, ΔM throughput, verdict
//! mix — and a final per-worker utilization breakdown from `RunStats`.
//!
//! Run with: `cargo run --release --example live_monitoring`

use paracosm::prelude::*;
use rand::prelude::*;
use std::time::Instant;

/// Rolling dashboard: aggregates a window of updates, prints one line per
/// window, and keeps whole-run totals.
struct Dashboard {
    window: LatencyHistogram,
    window_size: u64,
    window_delta_m: u64,
    window_start: Instant,
    total: LatencyHistogram,
    total_delta_m: u64,
    seen: u64,
    unsafe_seen: u64,
    noops: u64,
}

impl Dashboard {
    fn new(window_size: u64) -> Dashboard {
        Dashboard {
            window: LatencyHistogram::new(),
            window_size,
            window_delta_m: 0,
            window_start: Instant::now(),
            total: LatencyHistogram::new(),
            total_delta_m: 0,
            seen: 0,
            unsafe_seen: 0,
            noops: 0,
        }
    }
}

impl StreamObserver for Dashboard {
    fn on_update(&mut self, obs: &UpdateObservation) {
        self.seen += 1;
        self.window.record(obs.latency);
        self.total.record(obs.latency);
        self.window_delta_m += obs.delta_m();
        self.total_delta_m += obs.delta_m();
        if matches!(obs.verdict, Some(Classified::Unsafe)) {
            self.unsafe_seen += 1;
        }
        if obs.noop {
            self.noops += 1;
        }
        if self.window.count() >= self.window_size {
            let dt = self.window_start.elapsed();
            println!(
                "[{:>6}] p50={:>9?} p99={:>9?} max={:>9?}  ΔM={:<5} ({:>8.0} upd/s)",
                self.seen,
                self.window.percentile(50.0),
                self.window.percentile(99.0),
                self.window.max(),
                self.window_delta_m,
                self.window.count() as f64 / dt.as_secs_f64().max(1e-9),
            );
            self.window = LatencyHistogram::new();
            self.window_delta_m = 0;
            self.window_start = Instant::now();
        }
    }
}

fn main() {
    // A mid-size labeled graph and a triangle pattern over its two labels.
    let g = synth::generate(&SynthConfig {
        n_vertices: 2_000,
        n_edges: 9_000,
        n_vlabels: 2,
        n_elabels: 1,
        alpha: 0.7,
        seed: 31,
    });
    let mut q = QueryGraph::new();
    let a = q.add_vertex(VLabel(0));
    let b = q.add_vertex(VLabel(0));
    let c = q.add_vertex(VLabel(1));
    q.add_edge(a, b, ELabel(0)).unwrap();
    q.add_edge(b, c, ELabel(0)).unwrap();
    q.add_edge(a, c, ELabel(0)).unwrap();

    // Pre-build a churn stream: inserts of fresh edges, deletions of edges
    // the stream itself created (always structurally valid).
    let mut rng = StdRng::seed_from_u64(4);
    let n = g.vertex_slots() as u32;
    let mut present: Vec<(VertexId, VertexId)> = Vec::new();
    let mut updates: Vec<Update> = Vec::new();
    while updates.len() < 3_000 {
        let x = VertexId(rng.gen_range(0..n));
        let y = VertexId(rng.gen_range(0..n));
        if x == y {
            continue;
        }
        if !present.is_empty() && rng.gen_bool(0.4) {
            let (x, y) = present.swap_remove(rng.gen_range(0..present.len()));
            updates.push(Update::DeleteEdge(EdgeUpdate::new(x, y, ELabel(0))));
        } else if !g.has_edge(x, y) && !present.contains(&(x, y)) && !present.contains(&(y, x)) {
            present.push((x, y));
            updates.push(Update::InsertEdge(EdgeUpdate::new(x, y, ELabel(0))));
        }
    }
    let stream: UpdateStream = updates.into_iter().collect();

    let cfg = ParaCosmConfig::parallel(2)
        .tracing(TraceLevel::Counters)
        .with_slow_k(3);
    let mut engine = ParaCosm::new(g, q, Symbi::new(), cfg);
    let initial = engine.initial_matches(false).count;
    println!(
        "initially: {initial} mappings live; streaming {} updates...",
        stream.len()
    );

    let mut dash = Dashboard::new(500);
    let out = engine.run_stream(&stream, &mut dash).expect("valid stream");

    println!(
        "\nstream done: +{} -{} in {:?} ({} updates)",
        out.positives, out.negatives, out.elapsed, out.updates_applied
    );
    println!(
        "overall latency: {} | ΔM total = {} | unsafe = {} | noops = {}",
        dash.total.summary(),
        dash.total_delta_m,
        dash.unsafe_seen,
        dash.noops
    );
    println!("verdicts: {}", engine.stats().classifier.verdict_mix());

    // Worker utilization: busy time per inner-executor worker against the
    // stream's wall clock (idle workers ⇒ the inner executor was rarely
    // engaged — most updates were classified safe).
    for (w, busy) in engine.stats().thread_busy.iter().enumerate() {
        let pct = 100.0 * busy.as_secs_f64() / out.elapsed.as_secs_f64().max(1e-9);
        println!("worker {w}: busy {busy:?} ({pct:.1}% of wall)");
    }
    for su in &engine.stats().slowest {
        println!(
            "slowest #{}: {} latency={:?} nodes={}",
            su.index,
            su.describe(),
            su.latency,
            su.nodes
        );
    }

    // Audit: the running ΔM must reconcile with a from-scratch enumeration.
    let truth = engine.initial_matches(false).count;
    assert_eq!(
        initial + out.positives - out.negatives,
        truth,
        "incremental deltas drifted from the ground truth"
    );
    println!("audit: OK ({truth} mappings recomputed)");
}
