//! Live pattern monitoring: maintain the *materialized* match set, count
//! distinct subgraphs (not mappings), and track per-update latency
//! percentiles — the application-side plumbing around a CSM engine.
//!
//! Run with: `cargo run --release --example live_monitoring`

use paracosm::core::{AutomorphismGroup, LatencyHistogram, MatchStore};
use paracosm::datagen::{synth, SynthConfig};
use paracosm::prelude::*;
use rand::prelude::*;
use std::time::Instant;

fn main() {
    // A mid-size labeled graph and an unlabeled-triangle-ish pattern with
    // nontrivial automorphisms (so mappings ≠ subgraphs).
    let g = synth::generate(&SynthConfig {
        n_vertices: 2_000,
        n_edges: 9_000,
        n_vlabels: 2,
        n_elabels: 1,
        alpha: 0.7,
        seed: 31,
    });
    let mut q = QueryGraph::new();
    let a = q.add_vertex(VLabel(0));
    let b = q.add_vertex(VLabel(0));
    let c = q.add_vertex(VLabel(1));
    q.add_edge(a, b, ELabel(0)).unwrap();
    q.add_edge(b, c, ELabel(0)).unwrap();
    q.add_edge(a, c, ELabel(0)).unwrap();

    let aut = AutomorphismGroup::of(&q);
    println!(
        "pattern: {} vertices, |Aut(Q)| = {} (each subgraph appears as {} mappings)",
        q.num_vertices(),
        aut.order(),
        aut.order()
    );

    let mut engine = ParaCosm::new(g, q, Symbi::new(), ParaCosmConfig::parallel(2).collecting());

    // Materialize the initial match set.
    let mut store = MatchStore::new();
    store.bootstrap(engine.initial_matches(true).matches);
    println!(
        "initially: {} mappings = {} distinct subgraphs",
        store.len(),
        aut.distinct(store.len() as u64)
    );

    // Stream random churn, folding deltas into the store and timing each
    // update end-to-end (engine + store maintenance).
    let mut rng = StdRng::seed_from_u64(4);
    let mut latency = LatencyHistogram::new();
    let n = engine.graph().vertex_slots() as u32;
    let mut present: Vec<(VertexId, VertexId)> = Vec::new();
    let mut processed = 0;
    while processed < 3_000 {
        let x = VertexId(rng.gen_range(0..n));
        let y = VertexId(rng.gen_range(0..n));
        if x == y {
            continue;
        }
        let upd = if !present.is_empty() && rng.gen_bool(0.4) {
            let (x, y) = present.swap_remove(rng.gen_range(0..present.len()));
            Update::DeleteEdge(EdgeUpdate::new(x, y, ELabel(0)))
        } else if !engine.graph().has_edge(x, y) {
            present.push((x, y));
            Update::InsertEdge(EdgeUpdate::new(x, y, ELabel(0)))
        } else {
            continue;
        };
        let t0 = Instant::now();
        let out = engine.process_update(upd).expect("valid update");
        store.apply(&out).expect("consistent deltas");
        latency.record(t0.elapsed());
        processed += 1;
    }

    println!(
        "after {processed} updates: {} mappings = {} distinct subgraphs live",
        store.len(),
        aut.distinct(store.len() as u64)
    );
    println!("update latency: {}", latency.summary());

    // The store must agree with a from-scratch enumeration.
    let truth = engine.initial_matches(false).count;
    assert_eq!(store.len() as u64, truth, "store drifted from the engine");
    println!("store audit: OK ({truth} mappings recomputed)");
}
