//! Financial risk control (the paper's §3.1 motivation, after ByteGraph):
//! detect a *money-mule cycle* pattern in a streaming transaction graph.
//!
//! Entities: customer accounts (label 0), merchant accounts (label 1),
//! devices (label 2). Edge labels: transfers (0), device logins (1).
//!
//! The suspicious pattern: two customer accounts that transfer to each
//! other through a merchant **and** share a login device — a 4-vertex
//! cycle with a device chord, streamed against live transactions.
//!
//! Run with: `cargo run --release --example fraud_detection`

use paracosm::prelude::*;
use rand::prelude::*;

const CUSTOMER: u32 = 0;
const MERCHANT: u32 = 1;
const DEVICE: u32 = 2;
const TRANSFER: u32 = 0;
const LOGIN: u32 = 1;

fn fraud_query() -> QueryGraph {
    let mut q = QueryGraph::new();
    let a = q.add_vertex(VLabel(CUSTOMER)); // mule A
    let b = q.add_vertex(VLabel(CUSTOMER)); // mule B
    let m = q.add_vertex(VLabel(MERCHANT)); // pass-through merchant
    let d = q.add_vertex(VLabel(DEVICE)); // shared device
    q.add_edge(a, m, ELabel(TRANSFER)).unwrap();
    q.add_edge(m, b, ELabel(TRANSFER)).unwrap();
    q.add_edge(b, a, ELabel(TRANSFER)).unwrap(); // closing the money cycle
    q.add_edge(a, d, ELabel(LOGIN)).unwrap();
    q.add_edge(b, d, ELabel(LOGIN)).unwrap();
    q
}

fn main() {
    // A synthetic account/device graph standing in for the bank's ledger.
    let base = synth::generate(&SynthConfig {
        n_vertices: 3_000,
        n_edges: 12_000,
        n_vlabels: 3,
        n_elabels: 2,
        alpha: 0.7,
        seed: 2024,
    });

    let q = fraud_query();
    let algo = TurboFlux::new();
    let cfg = ParaCosmConfig::parallel(4).collecting();
    let mut engine = ParaCosm::new(base, q, algo, cfg);

    println!(
        "ledger: {} accounts/devices, {} edges; pre-existing suspicious patterns: {}",
        engine.graph().num_vertices(),
        engine.graph().num_edges(),
        engine.initial_matches(false).count
    );

    // Live transaction feed: mostly benign transfers, plus one staged
    // mule ring we expect the engine to flag the moment it completes.
    let mut rng = StdRng::seed_from_u64(7);
    let n = engine.graph().vertex_slots() as u32;

    // Pick the ring's participants by label from the existing graph.
    let pick = |g: &DataGraph, label: u32, skip: usize| -> VertexId {
        g.vertices_with_label(VLabel(label))[skip]
    };
    let (mule_a, mule_b) = (
        pick(engine.graph(), CUSTOMER, 0),
        pick(engine.graph(), CUSTOMER, 1),
    );
    let merchant = pick(engine.graph(), MERCHANT, 0);
    let device = pick(engine.graph(), DEVICE, 0);
    let staged: Vec<(usize, VertexId, VertexId, u32)> = vec![
        (400, mule_a, merchant, TRANSFER),
        (800, merchant, mule_b, TRANSFER),
        (1200, mule_a, device, LOGIN),
        (1600, mule_b, device, LOGIN),
        (1900, mule_b, mule_a, TRANSFER), // the cycle-closing transfer
    ];

    let mut alerts = 0u64;
    for step in 0..2_000usize {
        let (a, b, label) = match staged.iter().find(|&&(s, ..)| s == step) {
            Some(&(_, a, b, l)) => (a, b, l),
            None => {
                let a = VertexId(rng.gen_range(0..n));
                let b = VertexId(rng.gen_range(0..n));
                if a == b || engine.graph().has_edge(a, b) {
                    continue;
                }
                (a, b, if rng.gen_bool(0.8) { TRANSFER } else { LOGIN })
            }
        };
        if engine.graph().has_edge(a, b) {
            continue;
        }
        let out = engine
            .process_update(Update::InsertEdge(EdgeUpdate::new(a, b, ELabel(label))))
            .expect("valid update");
        if out.positives > 0 {
            alerts += out.positives;
            println!(
                "step {step}: ALERT — {} new mule-cycle instance(s) via edge ({a},{b})",
                out.positives
            );
            if let Some(m) = out.matches.first() {
                println!("          e.g. accounts {:?}", m.as_slice());
            }
        }
    }
    assert!(alerts > 0, "the staged mule ring must be detected");

    let s = engine.stats();
    println!(
        "\nprocessed {} transactions; {alerts} alerts; \
         ADS time {:.1?}, search time {:.1?}, {} search nodes",
        s.updates, s.ads_time, s.find_time, s.nodes
    );
}
